//! Insertion scripts and their execution under target egds (Section 4.4.3).
//!
//! A script is a sequence of parameterized insertion statements. Values are
//! referenced by *slot* — the preorder index of the node in the source tuple
//! tree — so the same script replays for every tuple tree with the same
//! shape: that is the reuse mechanism behind Figs. 14–15.

use sedex_storage::{ConflictPolicy, Instance, StorageError, Tuple, Value};

/// Where a statement takes a value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotRef {
    /// Preorder index into the source tuple tree's value vector.
    Src(usize),
    /// A fresh surrogate (labeled null), minted once per script *run* and
    /// shared by every assignment carrying the same id — how SEDEX realizes
    /// surrogate-key primitives (STBenchmark's SK/NE), where a target key
    /// has no source correspondence.
    Fresh(u32),
}

/// One parameterized insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Target relation to insert into.
    pub relation: String,
    /// `(column index in the target relation, value source)` pairs; unlisted
    /// columns receive SQL nulls.
    pub assignments: Vec<(usize, SlotRef)>,
}

/// A reusable insertion script.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Script {
    /// Statements in execution order (referenced entities first — Algorithm
    /// 2 emits bottom-up).
    pub statements: Vec<Statement>,
}

impl Script {
    /// Whether the script inserts nothing.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }
}

/// Outcome counters of running one script.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// New rows inserted.
    pub inserted: usize,
    /// Rows merged into an existing key-mate (egd applied).
    pub merged: usize,
    /// Exact duplicates collapsed.
    pub duplicates: usize,
    /// Hard egd conflicts (statement dropped, existing tuple kept).
    pub violations: usize,
}

impl std::ops::AddAssign for RunOutcome {
    fn add_assign(&mut self, rhs: RunOutcome) {
        self.inserted += rhs.inserted;
        self.merged += rhs.merged;
        self.duplicates += rhs.duplicates;
        self.violations += rhs.violations;
    }
}

/// Execute a script against the target with the given slot values.
///
/// Inserts run under [`ConflictPolicy::Merge`]: primary keys and unique
/// constraints are checked "before inserting any tuple", and a key-mate is
/// unified instead of duplicated — this is how SEDEX applies the target
/// egds. A hard constant conflict counts as a violation and keeps the
/// existing tuple (the consistency-over-completeness trade-off of
/// Section 4.4.3).
pub fn run_script(
    script: &Script,
    values: &[Value],
    target: &mut Instance,
    fresh_counter: &mut u64,
) -> Result<RunOutcome, StorageError> {
    let mut out = RunOutcome::default();
    let mut fresh: std::collections::HashMap<u32, Value> = std::collections::HashMap::new();
    for st in &script.statements {
        let arity = target.schema().relation_or_err(&st.relation)?.arity();
        let mut vals = vec![Value::Null; arity];
        for &(col, slot) in &st.assignments {
            vals[col] = match slot {
                SlotRef::Src(i) => values.get(i).cloned().unwrap_or(Value::Null),
                SlotRef::Fresh(id) => fresh
                    .entry(id)
                    .or_insert_with(|| {
                        let v = Value::Labeled(*fresh_counter);
                        *fresh_counter += 1;
                        v
                    })
                    .clone(),
            };
        }
        match target.insert(&st.relation, Tuple::new(vals), ConflictPolicy::Merge) {
            Ok(o) => match o {
                sedex_storage::InsertOutcome::Inserted(_) => out.inserted += 1,
                sedex_storage::InsertOutcome::Merged(_) => out.merged += 1,
                sedex_storage::InsertOutcome::Duplicate(_) => out.duplicates += 1,
                sedex_storage::InsertOutcome::Skipped(_) => {}
            },
            Err(StorageError::EgdFailure { .. }) => out.violations += 1,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{RelationSchema, Schema};

    fn target() -> Instance {
        let stu = RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt"])
            .primary_key(&["student"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Reg", &["student", "cname", "date"]);
        Instance::new(Schema::from_relations(vec![stu, reg]).unwrap())
    }

    fn demo_script() -> Script {
        // Insert Stu(student←slot0, prog←slot1), then Reg(student←slot0,
        // cname←slot2, date←slot3).
        Script {
            statements: vec![
                Statement {
                    relation: "Stu".into(),
                    assignments: vec![(0, SlotRef::Src(0)), (1, SlotRef::Src(1))],
                },
                Statement {
                    relation: "Reg".into(),
                    assignments: vec![
                        (0, SlotRef::Src(0)),
                        (1, SlotRef::Src(2)),
                        (2, SlotRef::Src(3)),
                    ],
                },
            ],
        }
    }

    fn vals(v: &[&str]) -> Vec<Value> {
        v.iter().map(|s| Value::text(*s)).collect()
    }

    #[test]
    fn script_inserts_with_null_padding() {
        let mut t = target();
        let out = run_script(
            &demo_script(),
            &vals(&["s1", "p1", "c1", "d1"]),
            &mut t,
            &mut 0,
        )
        .unwrap();
        assert_eq!(out.inserted, 2);
        let stu = t.relation("Stu").unwrap().row(0).unwrap();
        assert_eq!(stu, &sedex_storage::tuple!["s1", "p1", Value::Null]);
    }

    #[test]
    fn reuse_same_script_different_values() {
        let mut t = target();
        run_script(
            &demo_script(),
            &vals(&["s1", "p1", "c1", "d1"]),
            &mut t,
            &mut 0,
        )
        .unwrap();
        run_script(
            &demo_script(),
            &vals(&["s2", "p2", "c2", "d2"]),
            &mut t,
            &mut 0,
        )
        .unwrap();
        assert_eq!(t.relation("Stu").unwrap().len(), 2);
        assert_eq!(t.relation("Reg").unwrap().len(), 2);
    }

    #[test]
    fn egd_merge_on_key_mate() {
        let mut t = target();
        run_script(
            &demo_script(),
            &vals(&["s1", "p1", "c1", "d1"]),
            &mut t,
            &mut 0,
        )
        .unwrap();
        // Same student key: merged, not duplicated; Reg differs so inserts.
        let out = run_script(
            &demo_script(),
            &vals(&["s1", "p1", "c9", "d9"]),
            &mut t,
            &mut 0,
        )
        .unwrap();
        assert_eq!(t.relation("Stu").unwrap().len(), 1);
        assert_eq!(t.relation("Reg").unwrap().len(), 2);
        assert_eq!(out.merged + out.duplicates, 1);
    }

    #[test]
    fn egd_violation_keeps_existing() {
        let mut t = target();
        run_script(
            &demo_script(),
            &vals(&["s1", "p1", "c1", "d1"]),
            &mut t,
            &mut 0,
        )
        .unwrap();
        let out = run_script(
            &demo_script(),
            &vals(&["s1", "DIFFERENT", "c1", "d1"]),
            &mut t,
            &mut 0,
        )
        .unwrap();
        assert_eq!(out.violations, 1);
        assert_eq!(
            t.relation("Stu").unwrap().row(0).unwrap().values()[1],
            Value::text("p1")
        );
    }

    #[test]
    fn out_of_range_slot_becomes_null() {
        let mut t = target();
        let s = Script {
            statements: vec![Statement {
                relation: "Stu".into(),
                assignments: vec![(0, SlotRef::Src(0)), (1, SlotRef::Src(99))],
            }],
        };
        run_script(&s, &vals(&["s1"]), &mut t, &mut 0).unwrap();
        assert_eq!(
            t.relation("Stu").unwrap().row(0).unwrap().values()[1],
            Value::Null
        );
    }

    #[test]
    fn unknown_relation_errors() {
        let mut t = target();
        let s = Script {
            statements: vec![Statement {
                relation: "Nope".into(),
                assignments: vec![],
            }],
        };
        assert!(run_script(&s, &[], &mut t, &mut 0).is_err());
    }
}
