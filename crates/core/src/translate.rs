//! Tuple-tree translation — Algorithm 1 (Section 4.4.1).
//!
//! Given a source tuple tree `Tx`, the matching target relation tree `Tr`
//! and the correspondences Σ, produce the target tuple tree `Ty`: walk `Tr`,
//! fill each property that has a corresponding source node with that node's
//! value, and remove target nodes for which no corresponding source property
//! exists. Every translated node remembers the *source preorder index* it
//! took its value from, so the generated script can be replayed for any
//! other tuple tree of the same shape by substituting that tuple's values.
//!
//! Target **key** properties without a correspondence are not removed when
//! source data flows through them (a surrogate key — STBenchmark's SK/NE
//! primitives, or the linking key of a vertical partition): they become
//! [`SlotRef::Fresh`] slots that mint a labeled null per script run.

use sedex_mapping::Correspondences;
use sedex_pqgram::{PqLabel, Tree};
use sedex_storage::Value;
use sedex_treerep::relation_tree::NodeMeta;
use sedex_treerep::{RelationTree, TupleTree};

use crate::script::SlotRef;

/// A node of a translated (target-side) tuple tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TranslatedNode {
    /// Target property name.
    pub prop: String,
    /// The value carried over from the source (a labeled-null placeholder
    /// for surrogate keys).
    pub value: Value,
    /// Where the script takes this value from: a source tuple-tree slot, or
    /// a per-run fresh surrogate.
    pub src: SlotRef,
}

impl std::fmt::Display for TranslatedNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.prop, self.value)
    }
}

/// The translated tuple tree `Ty`, with per-node metadata copied from the
/// target relation tree (owners and FK expansion targets) for script
/// generation.
#[derive(Debug, Clone)]
pub struct TranslatedTree {
    /// The target relation the tuple was matched to.
    pub relation: String,
    /// The tree; the root is dummy iff the matched relation tree's root is.
    pub tree: Tree<PqLabel<TranslatedNode>>,
    /// Metadata parallel to `tree`'s node ids.
    pub meta: Vec<NodeMeta>,
}

impl TranslatedTree {
    /// Number of real (non-dummy) nodes carrying a *source* value (surrogate
    /// keys excluded) — i.e. source properties that will reach the target.
    pub fn assigned(&self) -> usize {
        self.tree
            .labels()
            .filter(|(_, l)| {
                matches!(
                    l,
                    PqLabel::Label(TranslatedNode {
                        src: SlotRef::Src(_),
                        ..
                    })
                )
            })
            .count()
    }
}

/// Intermediate recursive node used while deciding what survives.
struct Draft {
    prop: String,
    value: Value,
    src: SlotRef,
    meta: NodeMeta,
    children: Vec<Draft>,
}

/// Run Algorithm 1: translate source tuple tree `tx` into the shape of the
/// target relation tree `tr` under Σ.
pub fn translate(tx: &TupleTree, tr: &RelationTree, sigma: &Correspondences) -> TranslatedTree {
    let src_order = tx.tree.preorder();
    let mut used = vec![false; src_order.len()];
    let mut fresh_ids: u32 = 0;

    let troot = tr.tree.root();
    let empty = |tr: &RelationTree| TranslatedTree {
        relation: tr.relation.clone(),
        tree: Tree::new(PqLabel::Dummy),
        meta: vec![NodeMeta {
            owner: None,
            expands_to: Vec::new(),
        }],
    };

    match tr.tree.label(troot) {
        PqLabel::Dummy => {
            // Keyless root: build each child subtree under a dummy root.
            let mut out = Tree::new(PqLabel::Dummy);
            let mut meta = vec![tr.meta[troot].clone()];
            let kids: Vec<Draft> = tr
                .tree
                .children(troot)
                .iter()
                .filter_map(|&c| {
                    build_draft(tx, tr, sigma, c, &src_order, &mut used, &mut fresh_ids)
                })
                .collect();
            if kids.is_empty() {
                return empty(tr);
            }
            let root = out.root();
            for d in kids {
                materialize(d, &mut out, root, &mut meta);
            }
            TranslatedTree {
                relation: tr.relation.clone(),
                tree: out,
                meta,
            }
        }
        PqLabel::Label(_) => {
            match build_draft(tx, tr, sigma, troot, &src_order, &mut used, &mut fresh_ids) {
                Some(d) => {
                    let mut out = Tree::new(PqLabel::Label(TranslatedNode {
                        prop: d.prop.clone(),
                        value: d.value.clone(),
                        src: d.src,
                    }));
                    let mut meta = vec![d.meta.clone()];
                    let root = out.root();
                    for c in d.children {
                        materialize(c, &mut out, root, &mut meta);
                    }
                    TranslatedTree {
                        relation: tr.relation.clone(),
                        tree: out,
                        meta,
                    }
                }
                None => empty(tr),
            }
        }
    }
}

/// Build the draft subtree for target node `t_node`. Returns `None` when the
/// node has no corresponding source property and no surviving descendant —
/// Algorithm 1's "remove nodes for which there is no corresponding property
/// in the source".
fn build_draft(
    tx: &TupleTree,
    tr: &RelationTree,
    sigma: &Correspondences,
    t_node: usize,
    src_order: &[usize],
    used: &mut [bool],
    fresh_ids: &mut u32,
) -> Option<Draft> {
    let PqLabel::Label(prop) = tr.tree.label(t_node) else {
        return None;
    };
    let assignment = find_source(tx, sigma, tr, t_node, prop, src_order, used);
    let children: Vec<Draft> = tr
        .tree
        .children(t_node)
        .iter()
        .filter_map(|&c| build_draft(tx, tr, sigma, c, src_order, used, fresh_ids))
        .collect();
    match assignment {
        Some((slot, value)) => Some(Draft {
            prop: prop.clone(),
            value,
            src: SlotRef::Src(slot),
            meta: tr.meta[t_node].clone(),
            children,
        }),
        None if !children.is_empty() && !tr.meta[t_node].expands_to.is_empty() => {
            // An unmatched key/link property with surviving descendants:
            // surrogate (fresh labeled null per script run).
            let id = *fresh_ids;
            *fresh_ids += 1;
            Some(Draft {
                prop: prop.clone(),
                value: Value::Labeled(u64::MAX),
                src: SlotRef::Fresh(id),
                meta: tr.meta[t_node].clone(),
                children,
            })
        }
        None => None,
    }
}

/// Materialize a draft subtree into the arena tree.
fn materialize(
    d: Draft,
    out: &mut Tree<PqLabel<TranslatedNode>>,
    parent: usize,
    meta: &mut Vec<NodeMeta>,
) {
    let id = out.add_child(
        parent,
        PqLabel::Label(TranslatedNode {
            prop: d.prop,
            value: d.value,
            src: d.src,
        }),
    );
    meta.push(d.meta);
    debug_assert_eq!(meta.len(), out.len());
    for c in d.children {
        materialize(c, out, id, meta);
    }
}

/// Find an unused source node whose property corresponds to target property
/// `prop` (scoped by the target node's owning relation when the
/// correspondence is qualified). Marks the node used and returns its
/// preorder slot and value.
fn find_source(
    tx: &TupleTree,
    sigma: &Correspondences,
    tr: &RelationTree,
    t_node: usize,
    prop: &str,
    src_order: &[usize],
    used: &mut [bool],
) -> Option<(usize, Value)> {
    let owner = tr.meta[t_node].owner.as_deref();
    for (slot, &arena_id) in src_order.iter().enumerate() {
        if used[slot] {
            continue;
        }
        let PqLabel::Label(n) = tx.tree.label(arena_id) else {
            continue;
        };
        let hit = match owner {
            Some(owner_rel) => sigma
                .target_in_relation(Some(&n.relation), &n.prop, owner_rel, |c| c == prop)
                .map(|t| t == prop)
                .unwrap_or(false),
            None => sigma.target_label(Some(&n.relation), &n.prop) == Some(prop),
        };
        if hit {
            used[slot] = true;
            return Some((slot, n.value.clone()));
        }
    }
    None
}

/// The preorder value vector of a source tuple tree — the substitution data
/// a reused script consumes. Dummy nodes contribute an SQL null placeholder
/// (never referenced by any slot).
pub fn slot_values(tx: &TupleTree) -> Vec<Value> {
    tx.tree
        .preorder()
        .into_iter()
        .map(|id| match tx.tree.label(id) {
            PqLabel::Label(n) => n.value.clone(),
            PqLabel::Dummy => Value::Null,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema};
    use sedex_treerep::{relation_tree, tuple_tree, TreeConfig};

    fn university_source() -> Instance {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        let schema = Schema::from_relations(vec![student, prof, dep, reg]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)
            .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
            p,
        )
        .unwrap();
        inst.insert("Registration", sedex_storage::tuple!["s1", "c1", "dt1"], p)
            .unwrap();
        inst
    }

    fn target_schema() -> Schema {
        let stu =
            RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt", "supervisor"])
                .primary_key(&["student"])
                .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["cname", "credit"])
            .primary_key(&["cname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Reg", &["student", "cname", "date"])
            .foreign_key(&["student"], "Stu")
            .unwrap()
            .foreign_key(&["cname"], "Course")
            .unwrap();
        Schema::from_relations(vec![stu, course, reg]).unwrap()
    }

    fn paper_sigma() -> Correspondences {
        Correspondences::from_name_pairs([
            ("sname", "student"),
            ("course", "cname"),
            ("regdate", "date"),
            ("program", "prog"),
            ("dep", "dpt"),
        ])
    }

    #[test]
    fn fig8_translation_of_registration_tuple() {
        // Algorithm 1 on the first Registration tuple against TReg yields
        // exactly the tree of Fig. 8: * → student:s1(prog:p1, dpt:d1),
        // cname:c1, date:dt1.
        let inst = university_source();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Reg", &cfg).unwrap();
        let ty = translate(&tx, &tr, &paper_sigma());
        let rendered: Vec<String> = ty
            .tree
            .preorder()
            .into_iter()
            .map(|i| ty.tree.label(i).to_string())
            .collect();
        assert_eq!(
            rendered,
            vec![
                "*",
                "student:s1",
                "prog:p1",
                "dpt:d1",
                "cname:c1",
                "date:dt1"
            ]
        );
    }

    #[test]
    fn unsound_properties_never_appear() {
        // Every source-valued property in Ty must have a correspondent in Tx
        // — the "expected solution" soundness argument of Section 4.4.
        let inst = university_source();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Student", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Stu", &cfg).unwrap();
        let ty = translate(&tx, &tr, &paper_sigma());
        for (_, l) in ty.tree.labels() {
            if let PqLabel::Label(n) = l {
                if let SlotRef::Src(_) = n.src {
                    assert!(
                        tx.nodes().any(|sn| sn.value == n.value),
                        "unsound value {:?}",
                        n
                    );
                }
            }
        }
        // supervisor has no correspondence: it must not be assigned.
        assert!(ty
            .tree
            .labels()
            .all(|(_, l)| !l.to_string().starts_with("supervisor")));
    }

    #[test]
    fn fully_unmatched_tuple_yields_empty_tree() {
        let inst = university_source();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        // Dep tuple: dname/building have no correspondences at all.
        let tx = tuple_tree(&inst, "Dep", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Stu", &cfg).unwrap();
        let ty = translate(&tx, &tr, &paper_sigma());
        assert_eq!(ty.assigned(), 0);
        assert_eq!(ty.tree.len(), 1);
    }

    #[test]
    fn surrogate_root_for_unmatched_target_key() {
        // STBenchmark SK: source R(a,b) → target T(sk, a2, b2), sk has no
        // correspondence: the root becomes a Fresh slot, data still flows.
        let r = RelationSchema::with_any_columns("R", &["a", "b"]);
        let src_schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(src_schema);
        inst.insert(
            "R",
            sedex_storage::tuple!["v1", "v2"],
            ConflictPolicy::Allow,
        )
        .unwrap();
        let t = RelationSchema::with_any_columns("T", &["sk", "a2", "b2"])
            .primary_key(&["sk"])
            .unwrap();
        let tgt = Schema::from_relations(vec![t]).unwrap();
        let sigma = Correspondences::from_name_pairs([("a", "a2"), ("b", "b2")]);
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "R", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "T", &cfg).unwrap();
        let ty = translate(&tx, &tr, &sigma);
        assert_eq!(ty.assigned(), 2);
        let root_label = ty.tree.label(ty.tree.root());
        assert!(matches!(
            root_label,
            PqLabel::Label(TranslatedNode {
                src: SlotRef::Fresh(_),
                ..
            })
        ));
    }

    #[test]
    fn mid_tree_surrogate_link_survives() {
        // Nesting (NE): target Parent(pk, a2) ← Child(ck, pfk, b2), where
        // the link pfk has no source correspondence. The Child tree is
        // ck → {pfk → a2, b2}; translating a flat source must keep pfk as a
        // Fresh node because a2 flows through it.
        let f = RelationSchema::with_any_columns("F", &["k", "a", "b"])
            .primary_key(&["k"])
            .unwrap();
        let src_schema = Schema::from_relations(vec![f]).unwrap();
        let mut inst = Instance::new(src_schema);
        inst.insert(
            "F",
            sedex_storage::tuple!["k1", "av", "bv"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        let parent = RelationSchema::with_any_columns("Parent", &["pk", "a2"])
            .primary_key(&["pk"])
            .unwrap();
        let child = RelationSchema::with_any_columns("Child", &["ck", "pfk", "b2"])
            .primary_key(&["ck"])
            .unwrap()
            .foreign_key(&["pfk"], "Parent")
            .unwrap();
        let tgt = Schema::from_relations(vec![parent, child]).unwrap();
        let sigma = Correspondences::from_name_pairs([("k", "ck"), ("a", "a2"), ("b", "b2")]);
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "F", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Child", &cfg).unwrap();
        let ty = translate(&tx, &tr, &sigma);
        let labels: Vec<String> = ty
            .tree
            .preorder()
            .into_iter()
            .map(|i| ty.tree.label(i).to_string())
            .collect();
        // ck:k1, pfk:<surrogate>, a2:av, b2:bv all present.
        assert_eq!(labels.len(), 4, "{labels:?}");
        assert!(labels[0].starts_with("ck:k1"));
        assert!(labels.iter().any(|l| l.starts_with("a2:av")));
        assert!(labels.iter().any(|l| l.starts_with("b2:bv")));
        // Two distinct Fresh ids never collide.
        assert_eq!(ty.assigned(), 3);
    }

    #[test]
    fn slots_reference_source_preorder() {
        let inst = university_source();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Reg", &cfg).unwrap();
        let ty = translate(&tx, &tr, &paper_sigma());
        let values = slot_values(&tx);
        for (_, l) in ty.tree.labels() {
            if let PqLabel::Label(n) = l {
                let SlotRef::Src(slot) = n.src else {
                    panic!("unexpected surrogate in fully-matched tree");
                };
                assert_eq!(values[slot], n.value, "slot {slot} mismatch");
            }
        }
    }

    #[test]
    fn duplicate_properties_assign_distinct_source_nodes() {
        let s = RelationSchema::with_any_columns("S", &["a", "b"]);
        let source = Schema::from_relations(vec![s]).unwrap();
        let mut inst = Instance::new(source);
        inst.insert(
            "S",
            sedex_storage::tuple!["v1", "v2"],
            ConflictPolicy::Allow,
        )
        .unwrap();
        let t = RelationSchema::with_any_columns("T", &["x", "y"]);
        let tgt = Schema::from_relations(vec![t]).unwrap();
        let mut sigma = Correspondences::new();
        sigma.add_names("a", "x");
        sigma.add_names("b", "x"); // both source columns map to x
        sigma.add_names("b", "y");
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "S", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "T", &cfg).unwrap();
        let ty = translate(&tx, &tr, &sigma);
        // x gets a (first source node), y gets b; b is NOT reused for x.
        let labels: Vec<String> = ty
            .tree
            .preorder()
            .into_iter()
            .map(|i| ty.tree.label(i).to_string())
            .collect();
        assert_eq!(labels, vec!["*", "x:v1", "y:v2"]);
    }
}
