//! Per-exchange tracing state shared by the batch engine and the
//! streaming session.
//!
//! [`Trace`] bundles the optional observer with the running per-phase
//! breakdown. Timing is enabled only when an observer is attached or a
//! slow-exchange threshold is set; otherwise every method is a branch on
//! a `None`/`false` — no clock reads, no allocation, no atomic writes on
//! the hot path (the acceptance criterion of the observability issue).

use std::time::{Duration, Instant};

use sedex_observe::{slow_exchange_record, Event, Observer, Phase, PhaseTotals};

use crate::script::RunOutcome;

/// Tracing state for one exchange (or one streamed tuple).
pub(crate) struct Trace<'a> {
    obs: Option<&'a dyn Observer>,
    timing: bool,
    /// Session label and verb attributed in slow-exchange records, when the
    /// caller (the service) knows them.
    session: Option<&'a str>,
    verb: Option<&'a str>,
    /// Accumulated per-phase breakdown.
    pub totals: PhaseTotals,
}

impl<'a> Trace<'a> {
    /// A trace that times phases when `obs` is attached or `slow` is set.
    pub fn new(obs: Option<&'a dyn Observer>, slow: Option<Duration>) -> Self {
        Trace {
            obs,
            timing: obs.is_some() || slow.is_some(),
            session: None,
            verb: None,
            totals: PhaseTotals::new(),
        }
    }

    /// Attach multi-tenant attribution carried into slow-exchange records.
    pub fn with_context(mut self, session: Option<&'a str>, verb: Option<&'a str>) -> Self {
        self.session = session;
        self.verb = verb;
        self
    }

    /// Start a phase clock, or `None` when tracing is off.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.timing {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// End a phase: accumulate into the breakdown and notify the
    /// observer. A `None` start is a no-op.
    #[inline]
    pub fn end(&mut self, phase: Phase, started: Option<Instant>) {
        if let Some(t) = started {
            let nanos = t.elapsed().as_nanos() as u64;
            self.totals.add(phase, nanos);
            if let Some(o) = self.obs {
                o.event(&Event::Phase { phase, nanos });
            }
        }
    }

    /// Forward an event to the observer, if any.
    #[inline]
    pub fn emit(&self, e: &Event) {
        if let Some(o) = self.obs {
            o.event(e);
        }
    }

    /// Report one repository lookup (`repo_lookup{hit}`).
    #[inline]
    pub fn lookup(&self, hit: bool) {
        self.emit(&Event::RepoLookup { hit, count: 1 });
    }

    /// Report the row-level outcome of one script run.
    #[inline]
    pub fn outcome(&self, delta: &RunOutcome) {
        if self.obs.is_none() {
            return;
        }
        if delta.inserted > 0 {
            self.emit(&Event::RowsInserted {
                count: delta.inserted as u64,
            });
        }
        if delta.merged > 0 {
            self.emit(&Event::EgdMerge {
                count: delta.merged as u64,
            });
        }
        if delta.violations > 0 {
            self.emit(&Event::Violation {
                count: delta.violations as u64,
            });
        }
    }

    /// Close out an exchange: emit [`Event::Exchange`], and — when the
    /// total exceeded the slow threshold — a [`Event::SlowExchange`] plus
    /// the one-line structured record on stderr.
    pub fn finish_exchange(&self, total: Duration, tuples: u64, slow: Option<Duration>) {
        self.emit(&Event::Exchange {
            nanos: total.as_nanos() as u64,
            tuples,
            count: 1,
        });
        if let Some(threshold) = slow {
            if total > threshold {
                self.emit(&Event::SlowExchange {
                    nanos: total.as_nanos() as u64,
                    threshold_nanos: threshold.as_nanos() as u64,
                    phases: &self.totals,
                });
                eprintln!(
                    "{}",
                    slow_exchange_record(
                        total,
                        threshold,
                        tuples,
                        &self.totals,
                        self.session,
                        self.verb,
                    )
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Count(AtomicU64);
    impl Observer for Count {
        fn event(&self, _e: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_trace_reads_no_clock_and_emits_nothing() {
        let mut t = Trace::new(None, None);
        let started = t.start();
        assert!(started.is_none(), "no observer + no threshold: no clock");
        t.end(Phase::Match, started);
        t.lookup(true);
        t.outcome(&RunOutcome {
            inserted: 5,
            merged: 1,
            duplicates: 0,
            violations: 1,
        });
        t.finish_exchange(Duration::from_secs(100), 1, None);
        assert!(t.totals.is_zero());
    }

    #[test]
    fn threshold_alone_enables_timing_without_an_observer() {
        let mut t = Trace::new(None, Some(Duration::from_millis(1)));
        let started = t.start();
        assert!(started.is_some());
        t.end(Phase::ScriptRun, started);
        assert!(!t.totals.is_zero());
    }

    #[test]
    fn observer_receives_phase_lookup_outcome_and_exchange_events() {
        let obs = Count::default();
        let mut t = Trace::new(Some(&obs), None);
        let s = t.start();
        t.end(Phase::TreeBuild, s);
        t.lookup(false);
        t.outcome(&RunOutcome {
            inserted: 2,
            merged: 1,
            duplicates: 0,
            violations: 0,
        });
        t.finish_exchange(Duration::from_micros(5), 1, None);
        // Phase + lookup + inserted + merged + exchange = 5 events.
        assert_eq!(obs.0.load(Ordering::Relaxed), 5);
    }
}
