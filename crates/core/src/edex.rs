//! The EDEX baseline (Sekhavat & Parsons, DATA 2013) — SEDEX's predecessor.
//!
//! EDEX introduced entity-preserving exchange through **super-entities**:
//! per source tuple it materializes the set of candidate entities (a tuple's
//! own properties plus, recursively, the indirect properties reached through
//! natural joins), prunes the redundant ones, and then selects target host
//! relations. The paper keeps EDEX in the scalability comparisons (Figs.
//! 11–12) with two observations: its *output quality equals SEDEX's* (so it
//! is omitted from the quality experiments), but it scales worse because it
//! (a) enumerates and prunes a super-entity collection per tuple and
//! (b) has no script repository — every tuple is matched, translated and
//! scripted from scratch.
//!
//! This driver reproduces exactly that cost model: same matching and
//! translation machinery as SEDEX (hence identical output), preceded by
//! per-tuple super-entity enumeration + subset pruning, with script reuse
//! disabled.

use std::collections::BTreeSet;
use std::time::Instant;

use sedex_mapping::Correspondences;
use sedex_pqgram::PqLabel;
use sedex_storage::{Instance, Schema, StorageError};
use sedex_treerep::{tuple_tree, SchemaForest, TreeConfig, TupleTree};

use crate::marking::SeenSet;
use crate::matcher::Matcher;
use crate::metrics::ExchangeReport;
use crate::script::{run_script, RunOutcome};
use crate::scriptgen::generate_script;
use crate::translate::{slot_values, translate};

/// The EDEX engine.
#[derive(Debug, Clone)]
pub struct EdexEngine {
    p: usize,
    q: usize,
    max_depth: usize,
}

impl Default for EdexEngine {
    fn default() -> Self {
        EdexEngine {
            p: 2,
            q: 1,
            max_depth: 32,
        }
    }
}

impl EdexEngine {
    /// An EDEX engine with the default pq-gram parameters (2, 1).
    pub fn new() -> Self {
        EdexEngine::default()
    }

    /// Run the exchange. Output is identical to SEDEX's; only the cost
    /// profile differs.
    pub fn exchange(
        &self,
        source: &Instance,
        target_schema: &Schema,
        sigma: &Correspondences,
    ) -> Result<(Instance, ExchangeReport), StorageError> {
        let tree_cfg = TreeConfig {
            max_depth: self.max_depth,
            prune_nulls: true,
        };
        let mut report = ExchangeReport::default();
        let tg_start = Instant::now();
        let source_forest = SchemaForest::new(source.schema(), &tree_cfg)?;
        let target_forest = SchemaForest::new(target_schema, &tree_cfg)?;
        let matcher = Matcher::new(&target_forest, self.p, self.q);
        let order: Vec<String> = source_forest
            .processing_order()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut seen = SeenSet::for_instance(source);
        let mut target = Instance::new(target_schema.clone());
        let mut outcome = RunOutcome::default();
        let mut fresh_counter: u64 = 0;
        report.tg = tg_start.elapsed();

        for rel_name in &order {
            let rows = source.relation_or_err(rel_name)?.len() as u32;
            for row in 0..rows {
                if seen.is_seen(rel_name, row) {
                    report.tuples_skipped_seen += 1;
                    continue;
                }
                let t0 = Instant::now();
                let tx = tuple_tree(source, rel_name, row, &tree_cfg)?;
                seen.mark_all(&tx.visited);
                // EDEX's super-entity phase: enumerate candidate entities
                // and prune subsumed ones. The surviving count is unused for
                // the final answer (the full tree always wins) but the work
                // is the point — it is what the paper's scalability figures
                // charge EDEX for.
                let survivors = super_entities(&tx);
                debug_assert!(survivors >= 1);
                // No repository: match, translate and script every tuple.
                report.scripts_generated += 1;
                let script = match matcher.best_match(&tx, sigma) {
                    Some(m) => match target_forest.tree(&m.relation) {
                        Some(tr) => {
                            let ty = translate(&tx, tr, sigma);
                            generate_script(&ty, target_schema)
                        }
                        None => Default::default(),
                    },
                    None => Default::default(),
                };
                if script.is_empty() {
                    report.tuples_unmatched += 1;
                }
                report.tuples_processed += 1;
                report.tg += t0.elapsed();

                let t1 = Instant::now();
                if !script.is_empty() {
                    outcome +=
                        run_script(&script, &slot_values(&tx), &mut target, &mut fresh_counter)?;
                }
                report.te += t1.elapsed();
            }
        }

        report.inserted = outcome.inserted;
        report.merged = outcome.merged;
        report.violations = outcome.violations;
        report.stats = target.stats();
        Ok((target, report))
    }
}

/// Enumerate the super-entities of a tuple tree — one candidate per subtree
/// rooted at a non-leaf node (plus the whole tree) — as property-name sets,
/// then prune candidates subsumed by a superset candidate. Returns the
/// number of survivors.
fn super_entities(tx: &TupleTree) -> usize {
    let tree = &tx.tree;
    let mut candidates: Vec<BTreeSet<&str>> = Vec::new();
    for id in tree.preorder() {
        if tree.is_leaf(id) && id != tree.root() {
            continue;
        }
        // Properties of the subtree rooted here.
        let mut props = BTreeSet::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let PqLabel::Label(node) = tree.label(n) {
                props.insert(node.prop.as_str());
            }
            stack.extend(tree.children(n).iter().copied());
        }
        if !props.is_empty() {
            candidates.push(props);
        }
    }
    // Subset pruning.
    let mut survivors = 0usize;
    'outer: for (i, c) in candidates.iter().enumerate() {
        for (j, d) in candidates.iter().enumerate() {
            if i != j && c.is_subset(d) && (c.len() < d.len() || i > j) {
                continue 'outer;
            }
        }
        survivors += 1;
    }
    survivors.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SedexEngine;
    use sedex_storage::{ConflictPolicy, RelationSchema, Value};

    fn scenario() -> (Instance, Schema, Correspondences) {
        let student = RelationSchema::with_any_columns("Student", &["sname", "program", "dep"])
            .primary_key(&["sname"])
            .unwrap()
            .foreign_key(&["dep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let schema = Schema::from_relations(vec![student, dep]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Student", sedex_storage::tuple!["s1", "p1", "d1"], p)
            .unwrap();
        inst.insert("Student", sedex_storage::tuple!["s2", "p2", "d1"], p)
            .unwrap();

        let stu = RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt"])
            .primary_key(&["student"])
            .unwrap();
        let target = Schema::from_relations(vec![stu]).unwrap();
        let sigma = Correspondences::from_name_pairs([
            ("sname", "student"),
            ("program", "prog"),
            ("dep", "dpt"),
        ]);
        (inst, target, sigma)
    }

    #[test]
    fn edex_output_equals_sedex_output() {
        let (src, tgt, sigma) = scenario();
        let (sedex_out, _) = SedexEngine::new().exchange(&src, &tgt, &sigma).unwrap();
        let (edex_out, edex_report) = EdexEngine::new().exchange(&src, &tgt, &sigma).unwrap();
        assert_eq!(sedex_out.stats(), edex_out.stats());
        assert_eq!(
            sedex_out.relation("Stu").unwrap().len(),
            edex_out.relation("Stu").unwrap().len()
        );
        // EDEX never reuses scripts.
        assert_eq!(edex_report.scripts_reused, 0);
        assert_eq!(edex_report.scripts_generated, edex_report.tuples_processed);
    }

    #[test]
    fn edex_generates_more_scripts_than_sedex() {
        let (mut src, tgt, sigma) = scenario();
        for i in 0..100 {
            src.insert(
                "Student",
                sedex_storage::tuple![format!("x{i}"), "p", "d1"],
                ConflictPolicy::Reject,
            )
            .unwrap();
        }
        let (_, sr) = SedexEngine::new().exchange(&src, &tgt, &sigma).unwrap();
        let (_, er) = EdexEngine::new().exchange(&src, &tgt, &sigma).unwrap();
        assert!(er.scripts_generated > 10 * sr.scripts_generated.max(1));
    }

    #[test]
    fn super_entity_enumeration_counts() {
        let (src, _, _) = scenario();
        let tx = tuple_tree(&src, "Student", 0, &TreeConfig::default()).unwrap();
        // Subtrees at sname (full) and dep (dep, building): dep ⊂ full →
        // pruned; one survivor.
        assert_eq!(super_entities(&tx), 1);
        let _ = Value::Null;
    }
}
