//! Rendering transformation scripts and translated trees to external
//! formats.
//!
//! Algorithm 2 "generates scripts to insert tuple tree information to a
//! relational schema or to generate xml documents" (Section 4.4.2). The
//! engine executes scripts directly against the in-memory target; this
//! module materializes them as artifacts:
//!
//! * [`sql_template`] — the reusable parameterized script (`$N` slots,
//!   `@fN` surrogates): the thing the script repository actually caches;
//! * [`sql_statements`] — concrete `INSERT` statements for one tuple's
//!   values;
//! * [`xml_document`] — the translated tuple tree as a nested XML element,
//!   the paper's alternative output format.

use std::fmt;

use sedex_pqgram::PqLabel;
use sedex_storage::{Schema, Value};

use crate::metrics::ExchangeReport;
use crate::script::{Script, SlotRef};
use crate::translate::TranslatedTree;

/// One-line rendering of an [`ExchangeReport`] — the summary the CLI, the
/// server's `STATS` command and the experiment binaries all share, so the
/// counters are formatted in exactly one place.
///
/// ```text
/// 6 tuples, 24 constants, 0 nulls | Tg 1.2ms Te 800µs | scripts 2 generated / 10 reused | 0 violations
/// ```
impl fmt::Display for ExchangeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | Tg {:?} Te {:?} | scripts {} generated / {} reused | {} violations",
            self.stats,
            self.tg,
            self.te,
            self.scripts_generated,
            self.scripts_reused,
            self.violations
        )
    }
}

impl ExchangeReport {
    /// Verbose multi-line rendering: every counter the report carries, one
    /// per line — what the server returns for `STATS <session>` and the CLI
    /// prints under `--verbose`.
    pub fn verbose(&self) -> ReportVerbose<'_> {
        ReportVerbose(self)
    }
}

/// Display adapter for the verbose [`ExchangeReport`] form; see
/// [`ExchangeReport::verbose`].
pub struct ReportVerbose<'a>(&'a ExchangeReport);

impl fmt::Display for ReportVerbose<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.0;
        writeln!(f, "target: {}", r.stats)?;
        writeln!(
            f,
            "tuples: {} processed, {} skipped-seen, {} unmatched",
            r.tuples_processed, r.tuples_skipped_seen, r.tuples_unmatched
        )?;
        writeln!(
            f,
            "scripts: {} generated, {} reused ({:.1}% reuse)",
            r.scripts_generated,
            r.scripts_reused,
            r.reuse_percent()
        )?;
        writeln!(
            f,
            "rows: {} inserted, {} merged, {} violations",
            r.inserted, r.merged, r.violations
        )?;
        write!(
            f,
            "time: Tg {:?}, Te {:?}, total {:?}",
            r.tg,
            r.te,
            r.total_time()
        )
    }
}

/// Render a script as a reusable SQL template: slot values appear as `$N`
/// placeholders (N = source preorder index) and per-run surrogates as
/// `@fN`. Two tuples with the same tuple-tree shape share this template
/// verbatim — it is the textual form of what the repository caches.
pub fn sql_template(script: &Script, schema: &Schema) -> String {
    let mut out = String::new();
    for st in &script.statements {
        let Some(rel) = schema.relation(&st.relation) else {
            continue;
        };
        let cols: Vec<&str> = st
            .assignments
            .iter()
            .map(|&(c, _)| rel.columns[c].name.as_str())
            .collect();
        let vals: Vec<String> = st
            .assignments
            .iter()
            .map(|&(_, slot)| match slot {
                SlotRef::Src(i) => format!("${i}"),
                SlotRef::Fresh(f) => format!("@f{f}"),
            })
            .collect();
        out.push_str(&format!(
            "INSERT INTO {} ({}) VALUES ({});\n",
            st.relation,
            cols.join(", "),
            vals.join(", ")
        ));
    }
    out
}

/// Render a script as concrete SQL statements for one tuple's slot values.
/// Surrogates render as `NULL /* surrogate fN */` — a relational engine
/// would bind them to generated keys.
pub fn sql_statements(script: &Script, schema: &Schema, values: &[Value]) -> String {
    let mut out = String::new();
    for st in &script.statements {
        let Some(rel) = schema.relation(&st.relation) else {
            continue;
        };
        let cols: Vec<&str> = st
            .assignments
            .iter()
            .map(|&(c, _)| rel.columns[c].name.as_str())
            .collect();
        let vals: Vec<String> = st
            .assignments
            .iter()
            .map(|&(_, slot)| match slot {
                SlotRef::Src(i) => sql_literal(values.get(i).unwrap_or(&Value::Null)),
                SlotRef::Fresh(f) => format!("NULL /* surrogate f{f} */"),
            })
            .collect();
        out.push_str(&format!(
            "INSERT INTO {} ({}) VALUES ({});\n",
            st.relation,
            cols.join(", "),
            vals.join(", ")
        ));
    }
    out
}

/// SQL literal form of a value (single quotes doubled in text).
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        Value::Labeled(l) => format!("NULL /* N{l} */"),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Real(f) => f.0.to_string(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Render a translated tuple tree as an XML document: each node becomes an
/// element named after its target property, its value in a `value`
/// attribute, children nested. The dummy root renders as `<tuple>`.
pub fn xml_document(ty: &TranslatedTree) -> String {
    let mut out = String::new();
    render_node(ty, ty.tree.root(), 0, &mut out);
    out
}

fn render_node(ty: &TranslatedTree, id: usize, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let (name, value) = match ty.tree.label(id) {
        PqLabel::Dummy => ("tuple".to_owned(), None),
        PqLabel::Label(n) => (xml_name(&n.prop), Some(n.value.render().into_owned())),
    };
    out.push_str(&indent);
    out.push('<');
    out.push_str(&name);
    if let Some(v) = &value {
        out.push_str(&format!(" value=\"{}\"", xml_escape(v)));
    }
    if ty.tree.children(id).is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push_str(">\n");
    for &c in ty.tree.children(id) {
        render_node(ty, c, depth + 1, out);
    }
    out.push_str(&indent);
    out.push_str(&format!("</{name}>\n"));
}

fn xml_name(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scriptgen::generate_script;
    use crate::translate::{slot_values, translate};
    use sedex_mapping::Correspondences;
    use sedex_storage::{ConflictPolicy, Instance, RelationSchema};
    use sedex_treerep::{relation_tree, tuple_tree, TreeConfig};

    fn setup() -> (Instance, Schema, Correspondences) {
        let student = RelationSchema::with_any_columns("Student", &["sname", "program"])
            .primary_key(&["sname"])
            .unwrap();
        let src = Schema::from_relations(vec![student]).unwrap();
        let mut inst = Instance::new(src);
        inst.insert(
            "Student",
            sedex_storage::tuple!["s'1", "p1"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        let stu = RelationSchema::with_any_columns("Stu", &["student", "prog"])
            .primary_key(&["student"])
            .unwrap();
        let tgt = Schema::from_relations(vec![stu]).unwrap();
        let sigma = Correspondences::from_name_pairs([("sname", "student"), ("program", "prog")]);
        (inst, tgt, sigma)
    }

    #[test]
    fn sql_template_uses_slot_placeholders() {
        let (inst, tgt, sigma) = setup();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Student", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Stu", &cfg).unwrap();
        let ty = translate(&tx, &tr, &sigma);
        let script = generate_script(&ty, &tgt);
        let sql = sql_template(&script, &tgt);
        assert_eq!(sql, "INSERT INTO Stu (student, prog) VALUES ($0, $1);\n");
    }

    #[test]
    fn sql_statements_bind_and_escape_values() {
        let (inst, tgt, sigma) = setup();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Student", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Stu", &cfg).unwrap();
        let ty = translate(&tx, &tr, &sigma);
        let script = generate_script(&ty, &tgt);
        let sql = sql_statements(&script, &tgt, &slot_values(&tx));
        // The quote in s'1 must be doubled.
        assert_eq!(
            sql,
            "INSERT INTO Stu (student, prog) VALUES ('s''1', 'p1');\n"
        );
    }

    #[test]
    fn sql_literals() {
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::int(5)), "5");
        assert_eq!(sql_literal(&Value::bool(true)), "TRUE");
        assert_eq!(sql_literal(&Value::text("a'b")), "'a''b'");
        assert!(sql_literal(&Value::Labeled(3)).starts_with("NULL"));
    }

    #[test]
    fn xml_renders_nested_tree() {
        let (inst, tgt, sigma) = setup();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Student", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Stu", &cfg).unwrap();
        let ty = translate(&tx, &tr, &sigma);
        let xml = xml_document(&ty);
        assert!(
            xml.starts_with("<student value=\"s&apos;1\"")
                || xml.starts_with("<student value=\"s'1\"")
        );
        assert!(xml.contains("<prog value=\"p1\"/>"));
        assert!(xml.trim_end().ends_with("</student>"));
    }

    #[test]
    fn xml_escapes_special_characters() {
        assert_eq!(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(xml_name("weird col!"), "weird_col_");
    }

    #[test]
    fn report_one_line_display_carries_the_headline_counters() {
        let r = ExchangeReport {
            scripts_generated: 2,
            scripts_reused: 10,
            violations: 1,
            ..ExchangeReport::default()
        };
        let line = r.to_string();
        assert!(!line.contains('\n'), "one-line form: {line}");
        assert!(line.contains("scripts 2 generated / 10 reused"), "{line}");
        assert!(line.contains("1 violations"), "{line}");
    }

    #[test]
    fn report_verbose_display_is_multiline_and_complete() {
        let r = ExchangeReport {
            tuples_processed: 7,
            tuples_skipped_seen: 3,
            scripts_generated: 1,
            scripts_reused: 6,
            inserted: 7,
            merged: 2,
            ..ExchangeReport::default()
        };
        let text = r.verbose().to_string();
        assert!(text.lines().count() >= 5, "{text}");
        assert!(text.contains("7 processed, 3 skipped-seen"), "{text}");
        assert!(text.contains("85.7% reuse"), "{text}");
        assert!(text.contains("7 inserted, 2 merged"), "{text}");
    }
}
