//! # sedex-core
//!
//! The SEDEX engine — Scalable Entity Preserving Data Exchange (Sekhavat &
//! Parsons, IEEE TKDE 2016). SEDEX is a *hybrid* data-exchange system: it
//! decides where each source **entity** lands in the target by comparing the
//! data-level **tuple tree** of each source tuple against the schema-level
//! **relation trees** of the target, using windowed pq-gram similarity. Data
//! is then moved by generated insertion scripts which are cached by tuple
//! tree shape and *reused* for every tuple with the same structure — the
//! source of SEDEX's scalability (Figs. 12–15 of the paper).
//!
//! The pay-as-you-go pipeline (Fig. 1) is implemented by
//! [`engine::SedexEngine`]:
//!
//! 1. load CFDs ([`cfd`]) and pre-process the source,
//! 2. build source/target schema forests, order relations by descending
//!    relation-tree height ([`sedex_treerep::forest`], Section 4.1),
//! 3. per unseen tuple: build its tuple tree (marking referenced tuples as
//!    seen, [`marking`], Section 4.2), reduce it, and look its shape key up
//!    in the script repository ([`repository`]);
//! 4. on a miss: run the `Match` function ([`matcher`], Section 4.3),
//!    translate the tuple tree (Algorithm 1, [`mod@translate`]), generate the
//!    insertion script (Algorithm 2, [`scriptgen`]) and store it;
//! 5. run the script against the target under the target egds
//!    ([`script`], Section 4.4.3).
//!
//! The EDEX predecessor (super-entity based, no script reuse) is provided as
//! a baseline in [`edex`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfd;
pub mod edex;
pub mod engine;
pub mod marking;
pub mod matcher;
pub mod metrics;
pub mod quality;
pub mod render;
pub mod repository;
pub mod script;
pub mod scriptgen;
pub mod session;
mod trace;
pub mod translate;

pub use cfd::{Cfd, CfdInterpreter, CfdParseError};
pub use edex::EdexEngine;
pub use engine::{SedexConfig, SedexEngine};
pub use matcher::{MatchResult, Matcher};
pub use metrics::{ExchangeReport, HitEvent};
pub use quality::{compare, QualityReport};
pub use render::{sql_statements, sql_template, xml_document, ReportVerbose};
pub use repository::{RepositoryExport, ScriptRepository};
pub use script::{run_script, Script, SlotRef, Statement};
pub use session::{SedexSession, SessionReadSnapshot, SessionState};
pub use translate::{translate, TranslatedNode, TranslatedTree};

/// Re-export of the observability crate: [`observe::Observer`] plugs into
/// [`SedexEngine::with_observer`] / [`SedexSession::with_observer`], and
/// [`observe::MetricsRegistry`] + [`observe::render_prometheus`] turn the
/// emitted events into a Prometheus scrape body.
pub use sedex_observe as observe;
pub use sedex_observe::{
    Event, MetricsRegistry, NoopObserver, Observer, Phase, PhaseTotals, RegistryObserver,
};
