//! The pay-as-you-go streaming session (the workflow of Fig. 1).
//!
//! The batch entry point ([`crate::engine::SedexEngine::exchange`]) walks a
//! complete source instance. The paper's architecture, however, is
//! explicitly *pay-as-you-go*: "once a tuple with relation tree T is
//! processed, the data transformation script generated for this tuple is
//! stored … when we encounter a tuple for which the relation tree is similar
//! to a relation tree that is already available in the script repository, we
//! reuse the scripts without reprocessing the tuple", and "the only space
//! required is to store scripts; there is no need to store temporary data".
//!
//! [`SedexSession`] realizes that: tuples arrive over time, each is
//! exchanged immediately against the live target, and the script repository
//! (plus seen-marking state) persists across arrivals. Referenced tuples
//! must be fed before (or together with) their referencing tuples — exactly
//! the arrival order a CDC/ETL pipeline provides.

use std::sync::Arc;

use sedex_mapping::Correspondences;
use sedex_observe::{Event, Observer, Phase};
use sedex_storage::relation::RowId;
use sedex_storage::{ConflictPolicy, Instance, InstanceSnapshot, Schema, StorageError, Tuple};
use sedex_treerep::{tuple_shape_key, tuple_tree, SchemaForest, TreeConfig};

use crate::cfd::CfdInterpreter;
use crate::engine::SedexConfig;
use crate::marking::SeenSet;
use crate::matcher::Matcher;
use crate::metrics::ExchangeReport;
use crate::repository::{RepositoryExport, ScriptRepository};
use crate::script::{run_script, RunOutcome, Script};
use crate::scriptgen::generate_script;
use crate::trace::Trace;
use crate::translate::{slot_values, translate};

/// Everything mutable in a [`SedexSession`], detached from the engine
/// machinery (matchers, forests, config), which is rebuilt from the scenario
/// at restore time. This is the unit durability snapshots persist: restoring
/// it into a freshly constructed session continues exactly where the
/// exported one stopped — same source, same target (fresh labels included),
/// same warm script repository, same seen-marking, same counters.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The source instance accumulated so far (seed data included).
    pub source: Instance,
    /// The live target instance, labeled nulls and all.
    pub target: Instance,
    /// The script repository: entries plus hit/miss counters.
    pub repository: RepositoryExport,
    /// Seen-marking bitmaps per source relation.
    pub seen: Vec<(String, Vec<bool>)>,
    /// Next fresh surrogate label.
    pub fresh_counter: u64,
    /// The running report (without the per-lookup hit-event log).
    pub report: ExchangeReport,
}

/// A consistent, immutable read-only view of a session, captured in O(1)
/// amortized time (chunked copy-on-write snapshots of both instances plus
/// a counter copy). This is what MVCC readers — `SQL`, per-session
/// `STATS`, dump paths — render from *after* releasing the tenant lock:
/// the view never changes once captured, so a reader sees exactly the
/// state at some batch boundary, never a torn batch.
///
/// Deliberately cheap on the capture (writer) side: target stats are NOT
/// recomputed here — call [`SessionReadSnapshot::report_with_stats`] on
/// the reader side when the O(n) atom walk is wanted.
#[derive(Debug, Clone)]
pub struct SessionReadSnapshot {
    /// The source instance at capture.
    pub source: InstanceSnapshot,
    /// The target instance at capture.
    pub target: InstanceSnapshot,
    /// The running report at capture — counters only: target stats are
    /// stale (whatever the last `&mut` read left) and the hit-event log is
    /// cleared, exactly like [`SedexSession::report_snapshot`].
    pub report: ExchangeReport,
    /// Distinct scripts cached at capture.
    pub scripts_cached: usize,
    /// Repository hit ratio at capture.
    pub hit_ratio: f64,
}

impl SessionReadSnapshot {
    /// The captured report with target stats recomputed from the snapshot
    /// — the reader pays the O(n) walk, the capturing writer never does.
    pub fn report_with_stats(&self) -> ExchangeReport {
        let mut r = self.report.clone();
        r.stats = self.target.stats();
        r
    }
}

/// A long-lived exchange session: push source tuples as they arrive, read
/// the target at any time.
pub struct SedexSession {
    config: SedexConfig,
    cfds: CfdInterpreter,
    sigma: Correspondences,
    tree_cfg: TreeConfig,
    source: Instance,
    target: Instance,
    target_forest: SchemaForest,
    matcher: Matcher,
    repo: ScriptRepository,
    seen: SeenSet,
    fresh_counter: u64,
    report: ExchangeReport,
    observer: Option<Arc<dyn Observer>>,
    /// Session name attributed in slow-exchange records (multi-tenant
    /// service deployments); `None` for anonymous embedded use.
    label: Option<String>,
    /// The protocol verb currently driving `process`, set by the service
    /// before each request so slow records can name it.
    verb: Option<&'static str>,
}

impl SedexSession {
    /// Open a session for the given schemas and correspondences.
    pub fn new(
        config: SedexConfig,
        source_schema: Schema,
        target_schema: Schema,
        sigma: Correspondences,
    ) -> Result<Self, StorageError> {
        let tree_cfg = TreeConfig {
            max_depth: config.max_depth,
            prune_nulls: config.prune_nulls,
        };
        let target_forest = SchemaForest::new(&target_schema, &tree_cfg)?;
        let matcher = match config.window {
            None => Matcher::new(&target_forest, config.p, config.q),
            Some(w) => Matcher::windowed(&target_forest, config.p, config.q, w),
        };
        let source = Instance::new(source_schema);
        let seen = SeenSet::for_instance(&source);
        let repo =
            ScriptRepository::with_event_limit(config.record_hit_events, config.hit_event_limit);
        Ok(SedexSession {
            config,
            cfds: CfdInterpreter::new(),
            sigma,
            tree_cfg,
            target: Instance::new(target_schema),
            target_forest,
            matcher,
            repo,
            seen,
            fresh_counter: 0,
            source,
            report: ExchangeReport::default(),
            observer: None,
            label: None,
            verb: None,
        })
    }

    /// Attach CFDs; they are applied to each arriving tuple's relation
    /// context at exchange time.
    pub fn with_cfds(mut self, cfds: CfdInterpreter) -> Self {
        self.cfds = cfds;
        self
    }

    /// Attach a trace observer. Each processed tuple emits its pipeline
    /// phases plus one `Exchange` event (tuple count 1); skipped-seen
    /// tuples emit nothing. Without an observer and with no slow
    /// threshold the tracing hooks cost a `None` check — no clock reads,
    /// no allocation, no atomics.
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attach a session name; slow-exchange records will carry it as
    /// `session=<name>` so slow tuples can be attributed under
    /// multi-tenant load.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Set (or clear) the protocol verb attributed in slow-exchange
    /// records for subsequent exchanges. The service sets this per
    /// request; embedded callers can ignore it.
    pub fn set_verb(&mut self, verb: Option<&'static str>) {
        self.verb = verb;
    }

    /// Feed a *context* tuple without exchanging it: it becomes available
    /// for foreign-key dereferencing (dimension/lookup data). It will still
    /// be exchanged by a later [`SedexSession::exchange_pending`] unless a
    /// referencing tuple marks it seen first.
    pub fn feed(&mut self, relation: &str, tuple: Tuple) -> Result<RowId, StorageError> {
        let out = self.source.insert(relation, tuple, ConflictPolicy::Skip)?;
        let rows = self.source.relation_or_err(relation)?.len();
        self.seen.ensure_capacity(relation, rows);
        Ok(match out {
            sedex_storage::InsertOutcome::Inserted(id)
            | sedex_storage::InsertOutcome::Duplicate(id)
            | sedex_storage::InsertOutcome::Skipped(id)
            | sedex_storage::InsertOutcome::Merged(id) => id,
        })
    }

    /// Feed a tuple *and* exchange it immediately.
    pub fn exchange_tuple(
        &mut self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<RunOutcome, StorageError> {
        let row = self.feed(relation, tuple)?;
        self.process(relation, row)
    }

    /// Exchange every source tuple not yet seen, in descending
    /// relation-tree-height order (the batch tail of a streaming run).
    pub fn exchange_pending(&mut self) -> Result<RunOutcome, StorageError> {
        let source_forest = SchemaForest::new(self.source.schema(), &self.tree_cfg)?;
        let order: Vec<String> = source_forest
            .processing_order()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut total = RunOutcome::default();
        for rel in order {
            let rows = self.source.relation_or_err(&rel)?.len() as RowId;
            for row in 0..rows {
                total += self.process(&rel, row)?;
            }
        }
        Ok(total)
    }

    /// Process one source row (skipping already-seen rows).
    fn process(&mut self, relation: &str, row: RowId) -> Result<RunOutcome, StorageError> {
        if self.config.mark_seen && self.seen.is_seen(relation, row) {
            self.report.tuples_skipped_seen += 1;
            return Ok(RunOutcome::default());
        }
        let mut trace = Trace::new(
            self.observer.as_deref(),
            self.config.slow_exchange_threshold,
        )
        .with_context(self.label.as_deref(), self.verb);
        let t0 = std::time::Instant::now();
        // Apply CFDs to the tuple in place before building its tree.
        if !self.cfds.is_empty() {
            // CFDs are instance-level; applying per arrival keeps the
            // semantics while bounding work to the touched relations.
            self.cfds.apply(&mut self.source)?;
        }
        let tb = trace.start();
        let tx = tuple_tree(&self.source, relation, row, &self.tree_cfg)?;
        trace.end(Phase::TreeBuild, tb);
        if self.config.mark_seen {
            for v in &tx.visited {
                self.seen.ensure_capacity(&v.relation, (v.row + 1) as usize);
            }
            self.seen.mark_all(&tx.visited);
            self.seen.ensure_capacity(relation, (row + 1) as usize);
            self.seen.mark(relation, row);
        }
        let key = format!("{}|{}", relation, tuple_shape_key(&tx));
        let dropped_before = self.repo.events_dropped();
        let script = if self.config.reuse_scripts {
            self.repo.lookup(&key)
        } else {
            None
        };
        let dropped = self.repo.events_dropped() - dropped_before;
        if dropped > 0 {
            trace.emit(&Event::HitEventsDropped { count: dropped });
        }
        let script = match script {
            Some(s) => {
                self.report.scripts_reused += 1;
                trace.lookup(true);
                s
            }
            None => {
                self.report.scripts_generated += 1;
                trace.lookup(false);
                let m0 = trace.start();
                let best = self.matcher.best_match(&tx, &self.sigma);
                trace.end(Phase::Match, m0);
                let generated = match best {
                    Some(m) => match self.target_forest.tree(&m.relation) {
                        Some(tr) => {
                            let tr0 = trace.start();
                            let ty = translate(&tx, tr, &self.sigma);
                            trace.end(Phase::Translate, tr0);
                            let g0 = trace.start();
                            let s = generate_script(&ty, self.target.schema());
                            trace.end(Phase::ScriptGen, g0);
                            s
                        }
                        None => Default::default(),
                    },
                    None => Default::default(),
                };
                if generated.is_empty() {
                    self.report.tuples_unmatched += 1;
                }
                self.repo.insert(key, generated)
            }
        };
        self.report.tuples_processed += 1;
        let tg_tuple = t0.elapsed();
        self.report.tg += tg_tuple;

        let t1 = std::time::Instant::now();
        let mut out = RunOutcome::default();
        if !script.is_empty() {
            let sr = trace.start();
            out = run_script(
                &script,
                &slot_values(&tx),
                &mut self.target,
                &mut self.fresh_counter,
            )?;
            trace.end(Phase::ScriptRun, sr);
            trace.outcome(&out);
        }
        let te_tuple = t1.elapsed();
        self.report.te += te_tuple;
        self.report.inserted += out.inserted;
        self.report.merged += out.merged;
        self.report.violations += out.violations;
        trace.finish_exchange(tg_tuple + te_tuple, 1, self.config.slow_exchange_threshold);
        for (phase, nanos) in trace.totals.iter() {
            if nanos > 0 {
                self.report.phases.add(phase, nanos);
            }
        }
        Ok(out)
    }

    /// The live target instance.
    pub fn target(&self) -> &Instance {
        &self.target
    }

    /// The source accumulated so far.
    pub fn source(&self) -> &Instance {
        &self.source
    }

    /// The session's running report (stats refreshed on read).
    pub fn report(&mut self) -> &ExchangeReport {
        self.report.stats = self.target.stats();
        self.report
            .hit_events
            .clone_from(&self.repo.events().to_vec());
        self.report.hit_events_dropped = self.repo.events_dropped() as usize;
        &self.report
    }

    /// Distinct scripts cached so far — "the only space required".
    pub fn scripts_cached(&self) -> usize {
        self.repo.len()
    }

    /// A cheap point-in-time copy of the running report, usable through a
    /// shared reference (unlike [`SedexSession::report`], which needs `&mut
    /// self`). Target stats are recomputed; the per-lookup hit-event log is
    /// NOT copied — it can be large, and concurrent callers (the service's
    /// `STATS` command) only need the counters.
    pub fn report_snapshot(&self) -> ExchangeReport {
        let mut r = self.report.clone();
        r.stats = self.target.stats();
        r.hit_events.clear();
        r.hit_events_dropped = self.repo.events_dropped() as usize;
        r
    }

    /// Capture a [`SessionReadSnapshot`]: consistent copy-on-write views
    /// of source and target plus the report counters. The writer-side cost
    /// is a tail copy per relation (< 256 tuples each) and `Arc` bumps —
    /// independent of session size — so the service can afford to publish
    /// one at every batch boundary while still holding the tenant lock.
    pub fn read_snapshot(&self) -> SessionReadSnapshot {
        let mut report = self.report.clone();
        report.hit_events.clear();
        report.hit_events_dropped = self.repo.events_dropped() as usize;
        SessionReadSnapshot {
            source: self.source.snapshot(),
            target: self.target.snapshot(),
            report,
            scripts_cached: self.repo.len(),
            hit_ratio: self.repo.hit_ratio(),
        }
    }

    /// Export all mutable state for a durability snapshot (see
    /// [`SessionState`]). The per-lookup hit-event log is not exported — it
    /// is unbounded and only feeds the Fig. 14 experiment.
    pub fn export_state(&self) -> SessionState {
        let mut report = self.report.clone();
        report.stats = self.target.stats();
        report.hit_events.clear();
        SessionState {
            source: self.source.clone(),
            target: self.target.clone(),
            repository: self.repo.export(),
            seen: self.seen.export(),
            fresh_counter: self.fresh_counter,
            report,
        }
    }

    /// Replace this session's mutable state with an exported one. The
    /// session must have been constructed from the same scenario (schemas,
    /// correspondences, CFDs) as the exporter; engine machinery derived from
    /// those is kept as-is.
    pub fn restore_state(&mut self, state: SessionState) {
        self.source = state.source;
        self.target = state.target;
        let mut repo = ScriptRepository::with_event_limit(
            self.config.record_hit_events,
            self.config.hit_event_limit,
        );
        repo.import(state.repository);
        self.repo = repo;
        self.seen = SeenSet::import(state.seen);
        self.fresh_counter = state.fresh_counter;
        self.report = state.report;
    }

    /// Drain scripts generated since the last drain (see
    /// [`ScriptRepository::take_new_scripts`]) — the service persists each
    /// as one WAL record.
    pub fn take_new_scripts(&mut self) -> Vec<(String, Arc<Script>)> {
        self.repo.take_new_scripts()
    }

    /// Install one script under its shape key without touching lookup
    /// counters — the WAL-replay path for persisted `ScriptAdd` records.
    pub fn install_script(&mut self, key: String, script: Script) {
        self.repo.install(key, script);
    }

    /// The current repository hit ratio `n_r / (n_r + n_g)` — survives a
    /// snapshot/restore cycle (warm start).
    pub fn repository_hit_ratio(&self) -> f64 {
        self.repo.hit_ratio()
    }

    /// Close the session, returning the target and the final report.
    pub fn finish(mut self) -> (Instance, ExchangeReport) {
        self.report.stats = self.target.stats();
        self.report.hit_events = self.repo.take_events();
        self.report.hit_events_dropped = self.repo.events_dropped() as usize;
        (self.target, self.report)
    }
}

// The service crate moves whole sessions across threads (worker pool +
// sharded session map); keep the compiler honest about that capability.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SedexSession>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{RelationSchema, Value};

    fn schemas() -> (Schema, Schema, Correspondences) {
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let student = RelationSchema::with_any_columns("Student", &["sname", "program", "dep"])
            .primary_key(&["sname"])
            .unwrap()
            .foreign_key(&["dep"], "Dep")
            .unwrap();
        let source = Schema::from_relations(vec![dep, student]).unwrap();
        let stu = RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt"])
            .primary_key(&["student"])
            .unwrap();
        let target = Schema::from_relations(vec![stu]).unwrap();
        let sigma = Correspondences::from_name_pairs([
            ("sname", "student"),
            ("program", "prog"),
            ("dep", "dpt"),
        ]);
        (source, target, sigma)
    }

    #[test]
    fn streaming_matches_batch() {
        let (src_schema, tgt_schema, sigma) = schemas();
        // Batch reference.
        let mut batch_src = Instance::new(src_schema.clone());
        batch_src
            .insert(
                "Dep",
                sedex_storage::tuple!["d1", "b1"],
                ConflictPolicy::Reject,
            )
            .unwrap();
        for i in 0..20 {
            batch_src
                .insert(
                    "Student",
                    Tuple::of([format!("s{i}"), format!("p{i}"), "d1".to_string()]),
                    ConflictPolicy::Reject,
                )
                .unwrap();
        }
        let (batch_out, _) = crate::engine::SedexEngine::new()
            .exchange(&batch_src, &tgt_schema, &sigma)
            .unwrap();

        // Streaming: feed the dimension, then stream students.
        let mut session =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        for i in 0..20 {
            session
                .exchange_tuple(
                    "Student",
                    Tuple::of([format!("s{i}"), format!("p{i}"), "d1".to_string()]),
                )
                .unwrap();
        }
        let (stream_out, report) = session.finish();
        assert_eq!(stream_out.stats(), batch_out.stats());
        assert_eq!(
            stream_out.relation("Stu").unwrap().len(),
            batch_out.relation("Stu").unwrap().len()
        );
        // One script generated, 19 reuses.
        assert_eq!(report.scripts_generated, 1);
        assert_eq!(report.scripts_reused, 19);
    }

    #[test]
    fn scripts_cached_is_bounded_by_shapes() {
        let (src_schema, tgt_schema, sigma) = schemas();
        let mut session =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        for i in 0..50 {
            // Alternate two shapes: with and without a dep reference.
            let dep = if i % 2 == 0 {
                Value::text("d1")
            } else {
                Value::Null
            };
            session
                .exchange_tuple(
                    "Student",
                    Tuple::new(vec![
                        Value::Text(format!("s{i}")),
                        Value::Text(format!("p{i}")),
                        dep,
                    ]),
                )
                .unwrap();
        }
        assert_eq!(session.scripts_cached(), 2);
        assert_eq!(session.target().relation("Stu").unwrap().len(), 50);
    }

    #[test]
    fn exchange_pending_covers_fed_tuples() {
        let (src_schema, tgt_schema, sigma) = schemas();
        let mut session =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        session
            .feed("Student", sedex_storage::tuple!["s1", "p1", "d1"])
            .unwrap();
        session.exchange_pending().unwrap();
        // The student was exchanged; the Dep tuple was marked seen through
        // it (Student is processed first, taller tree) and skipped.
        assert_eq!(session.target().relation("Stu").unwrap().len(), 1);
        let report = session.report();
        assert!(report.tuples_skipped_seen >= 1);
    }

    #[test]
    fn report_snapshot_matches_mut_report() {
        let (src_schema, tgt_schema, sigma) = schemas();
        let mut session =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        for i in 0..5 {
            session
                .exchange_tuple(
                    "Student",
                    Tuple::of([format!("s{i}"), format!("p{i}"), "d1".to_string()]),
                )
                .unwrap();
        }
        let snap = session.report_snapshot();
        let full = session.report();
        assert_eq!(snap.scripts_generated, full.scripts_generated);
        assert_eq!(snap.scripts_reused, full.scripts_reused);
        assert_eq!(snap.stats, full.stats);
        assert_eq!(snap.inserted, full.inserted);
    }

    #[test]
    fn read_snapshot_is_isolated_and_stats_match() {
        let (src_schema, tgt_schema, sigma) = schemas();
        let mut session =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        for i in 0..5 {
            session
                .exchange_tuple(
                    "Student",
                    Tuple::of([format!("s{i}"), format!("p{i}"), "d1".to_string()]),
                )
                .unwrap();
        }
        let snap = session.read_snapshot();
        // Reader-side stats equal what the lock-holding path would report.
        let r = snap.report_with_stats();
        assert_eq!(r.stats, session.report_snapshot().stats);
        assert_eq!(r.scripts_generated, 1);
        assert_eq!(r.scripts_reused, 4);
        assert_eq!(snap.scripts_cached, 1);
        assert_eq!(snap.target.relation("Stu").unwrap().len(), 5);
        // Later exchanges never leak into the captured view.
        session
            .exchange_tuple("Student", sedex_storage::tuple!["s9", "p9", "d1"])
            .unwrap();
        assert_eq!(snap.target.relation("Stu").unwrap().len(), 5);
        assert_eq!(snap.report_with_stats().stats.tuples, 5);
        assert!(session.read_snapshot().target.epoch() > snap.target.epoch());
    }

    #[test]
    fn observer_counts_each_streamed_tuple_as_one_exchange() {
        use sedex_observe::{names, MetricsRegistry, RegistryObserver};
        let (src_schema, tgt_schema, sigma) = schemas();
        let registry = MetricsRegistry::new();
        let mut session = SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma)
            .unwrap()
            .with_observer(Arc::new(RegistryObserver::new(&registry)));
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        for i in 0..5 {
            session
                .exchange_tuple(
                    "Student",
                    Tuple::of([format!("s{i}"), format!("p{i}"), "d1".to_string()]),
                )
                .unwrap();
        }
        assert_eq!(registry.counter_value(names::EXCHANGE_TOTAL), Some(5));
        assert_eq!(registry.counter_value(names::TUPLES_TOTAL), Some(5));
        let (_, report) = session.finish();
        assert!(!report.phases.is_zero());
    }

    #[test]
    fn no_observer_leaves_the_phase_breakdown_zero() {
        let (src_schema, tgt_schema, sigma) = schemas();
        let mut session =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        session
            .exchange_tuple("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        let (_, report) = session.finish();
        assert!(report.phases.is_zero());
    }

    #[test]
    fn export_restore_continues_where_the_export_stopped() {
        let (src_schema, tgt_schema, sigma) = schemas();
        let mut session = SedexSession::new(
            SedexConfig::default(),
            src_schema.clone(),
            tgt_schema.clone(),
            sigma.clone(),
        )
        .unwrap();
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        for i in 0..10 {
            session
                .exchange_tuple(
                    "Student",
                    Tuple::of([format!("s{i}"), format!("p{i}"), "d1".to_string()]),
                )
                .unwrap();
        }
        let state = session.export_state();

        // A fresh session restored from the export...
        let mut restored =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        restored.restore_state(state);
        assert_eq!(restored.target().stats(), session.target().stats());
        assert_eq!(restored.scripts_cached(), session.scripts_cached());

        // ...keeps reusing the cached script: a new same-shape push is a
        // repository hit, not a regeneration (the warm-start property).
        restored
            .exchange_tuple("Student", sedex_storage::tuple!["s99", "p99", "d1"])
            .unwrap();
        let r = restored.report_snapshot();
        assert_eq!(r.scripts_generated, 1);
        assert_eq!(r.scripts_reused, 10);
        assert!(restored.repository_hit_ratio() > 0.9);
    }

    #[test]
    fn duplicate_arrivals_are_idempotent() {
        let (src_schema, tgt_schema, sigma) = schemas();
        let mut session =
            SedexSession::new(SedexConfig::default(), src_schema, tgt_schema, sigma).unwrap();
        session
            .feed("Dep", sedex_storage::tuple!["d1", "b1"])
            .unwrap();
        for _ in 0..3 {
            session
                .exchange_tuple("Student", sedex_storage::tuple!["s1", "p1", "d1"])
                .unwrap();
        }
        assert_eq!(session.target().relation("Stu").unwrap().len(), 1);
    }
}
