//! Data-exchange quality measurement against an expected solution.
//!
//! Section 4.4 defines the *expected solution* (after Mecca et al.'s "What
//! is the IQ of your data transformation system?") as one containing "no
//! unsound or redundant information". This module scores a produced target
//! instance against a reference instance with null-tolerant tuple matching:
//!
//! * a produced tuple **matches** an expected tuple when every constant
//!   agrees and nulls (SQL or labeled) align with anything;
//! * **precision** = matched produced tuples / produced tuples (redundant or
//!   unsound tuples lower it);
//! * **recall** = covered expected tuples / expected tuples (lost entities
//!   lower it).
//!
//! Matching is a greedy per-relation bipartite assignment — exact for the
//! instances our scenarios produce (few nulls per tuple, keys present).

use sedex_storage::{Instance, Tuple};

/// Quality of a produced instance relative to an expected one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Produced tuples that match some expected tuple.
    pub matched: usize,
    /// Total produced tuples.
    pub produced: usize,
    /// Expected tuples covered by some produced tuple.
    pub covered: usize,
    /// Total expected tuples.
    pub expected: usize,
}

impl QualityReport {
    /// `matched / produced` (1.0 when nothing was produced and nothing was
    /// expected).
    pub fn precision(&self) -> f64 {
        if self.produced == 0 {
            if self.expected == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.matched as f64 / self.produced as f64
        }
    }

    /// `covered / expected` (1.0 when nothing was expected).
    pub fn recall(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.covered as f64 / self.expected as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Whether a produced tuple matches an expected tuple: constants must be
/// equal; any null on either side aligns with anything.
fn tuples_match(produced: &Tuple, expected: &Tuple) -> bool {
    produced.arity() == expected.arity()
        && produced
            .values()
            .iter()
            .zip(expected.values())
            .all(|(p, e)| p.is_any_null() || e.is_any_null() || p == e)
}

/// Score `actual` against `expected`. Relations present in only one of the
/// two instances count fully against precision/recall respectively.
pub fn compare(actual: &Instance, expected: &Instance) -> QualityReport {
    let mut report = QualityReport {
        matched: 0,
        produced: 0,
        covered: 0,
        expected: 0,
    };
    // Union of relation names from both schemas.
    let mut names: Vec<&str> = actual.schema().relation_names().collect();
    for n in expected.schema().relation_names() {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    for name in names {
        let produced: Vec<&Tuple> = actual
            .relation(name)
            .map(|r| r.iter().collect())
            .unwrap_or_default();
        let wanted: Vec<&Tuple> = expected
            .relation(name)
            .map(|r| r.iter().collect())
            .unwrap_or_default();
        report.produced += produced.len();
        report.expected += wanted.len();
        // Greedy assignment, most-constant-rich produced tuples first so
        // informative tuples claim their mates before null-padded ones.
        let mut order: Vec<usize> = (0..produced.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(produced[i].constants()));
        let mut taken = vec![false; wanted.len()];
        for i in order {
            if let Some(j) =
                (0..wanted.len()).find(|&j| !taken[j] && tuples_match(produced[i], wanted[j]))
            {
                taken[j] = true;
                report.matched += 1;
                report.covered += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema, Value};

    fn instance_of(rows: &[Tuple]) -> Instance {
        let r = RelationSchema::with_any_columns("T", &["a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for t in rows {
            inst.insert("T", t.clone(), ConflictPolicy::Allow).unwrap();
        }
        inst
    }

    #[test]
    fn identical_instances_are_perfect() {
        let rows = vec![
            sedex_storage::tuple!["1", "2"],
            sedex_storage::tuple!["3", "4"],
        ];
        let a = instance_of(&rows);
        let b = instance_of(&rows);
        let q = compare(&a, &b);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn redundant_tuples_lower_precision_only() {
        let expected = instance_of(&[sedex_storage::tuple!["1", "2"]]);
        let actual = instance_of(&[
            sedex_storage::tuple!["1", "2"],
            sedex_storage::tuple!["9", "9"], // unsound extra
        ]);
        let q = compare(&actual, &expected);
        assert_eq!(q.precision(), 0.5);
        assert_eq!(q.recall(), 1.0);
    }

    #[test]
    fn missing_tuples_lower_recall_only() {
        let expected = instance_of(&[
            sedex_storage::tuple!["1", "2"],
            sedex_storage::tuple!["3", "4"],
        ]);
        let actual = instance_of(&[sedex_storage::tuple!["1", "2"]]);
        let q = compare(&actual, &expected);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 0.5);
    }

    #[test]
    fn nulls_align_with_anything() {
        let expected = instance_of(&[sedex_storage::tuple!["1", "2"]]);
        let actual = instance_of(&[sedex_storage::tuple!["1", Value::Labeled(7)]]);
        let q = compare(&actual, &expected);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
    }

    #[test]
    fn each_expected_tuple_claimed_once() {
        // Two null-padded copies cannot both claim the single expected
        // tuple: the second counts as redundancy.
        let expected = instance_of(&[sedex_storage::tuple!["1", "2"]]);
        let actual = instance_of(&[
            sedex_storage::tuple!["1", "2"],
            sedex_storage::tuple!["1", Value::Null],
        ]);
        let q = compare(&actual, &expected);
        assert_eq!(q.matched, 1);
        assert!((q.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_vs_empty_is_perfect() {
        let a = instance_of(&[]);
        let b = instance_of(&[]);
        let q = compare(&a, &b);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn constant_rich_tuples_match_first() {
        // Expected has a full and a partial tuple; produced likewise. The
        // full produced tuple must claim the full expected one.
        let expected = instance_of(&[
            sedex_storage::tuple!["1", "2"],
            sedex_storage::tuple!["1", Value::Null],
        ]);
        let actual = instance_of(&[
            sedex_storage::tuple!["1", Value::Null],
            sedex_storage::tuple!["1", "2"],
        ]);
        let q = compare(&actual, &expected);
        assert_eq!(q.matched, 2);
        assert_eq!(q.f1(), 1.0);
    }
}
