//! Exchange reports: the measurements the paper's figures are built from.

use std::time::Duration;

use sedex_observe::{Event, MetricsRegistry, Observer, PhaseTotals, RegistryObserver};
use sedex_storage::InstanceStats;

/// One script-repository lookup, timestamped relative to the start of the
/// exchange — the raw data behind the hit-ratio curve of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitEvent {
    /// Time since the exchange started.
    pub at: Duration,
    /// Whether the lookup was a hit.
    pub hit: bool,
}

/// Counters and timings of one SEDEX (or EDEX) exchange run.
#[derive(Debug, Clone, Default)]
pub struct ExchangeReport {
    /// Target-instance statistics (the quality measure of Figs. 9–10).
    pub stats: InstanceStats,
    /// Script generation time `Tg`: tree building, matching, translation,
    /// script generation and repository bookkeeping.
    pub tg: Duration,
    /// Script execution time `Te`: running insertion statements under egds.
    pub te: Duration,
    /// Source tuples processed directly.
    pub tuples_processed: usize,
    /// Source tuples skipped because they were already *seen* through a
    /// referencing tuple (Section 4.2).
    pub tuples_skipped_seen: usize,
    /// Freshly generated scripts (`n_g`).
    pub scripts_generated: usize,
    /// Script reuses (`n_r`).
    pub scripts_reused: usize,
    /// Tuples with no usable correspondence (nothing inserted).
    pub tuples_unmatched: usize,
    /// Rows inserted into the target.
    pub inserted: usize,
    /// egd merges performed during script runs.
    pub merged: usize,
    /// Hard egd violations.
    pub violations: usize,
    /// Timestamped repository lookups (only when event recording is on).
    pub hit_events: Vec<HitEvent>,
    /// Lookups whose hit event was discarded because the repository's
    /// event buffer was at its cap (`sedex_hit_events_dropped_total`).
    pub hit_events_dropped: usize,
    /// Per-phase time breakdown (`tree_build`, `match`, `translate`,
    /// `scriptgen`, `script_run`). Populated only when an observer is
    /// attached or a slow-exchange threshold is set — fine-grained timing
    /// is otherwise skipped to keep the hot path clock-free.
    pub phases: PhaseTotals,
}

impl ExchangeReport {
    /// Total wall time.
    pub fn total_time(&self) -> Duration {
        self.tg + self.te
    }

    /// Final hit ratio `n_r / (n_r + n_g)`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.scripts_reused + self.scripts_generated;
        if total == 0 {
            0.0
        } else {
            self.scripts_reused as f64 / total as f64
        }
    }

    /// Percentage of lookups that reused a script — the Fig. 15 measure.
    pub fn reuse_percent(&self) -> f64 {
        self.hit_ratio() * 100.0
    }

    /// Replay this report into an observer as aggregate events — one
    /// event per kind, with counts. Feeding a [`RegistryObserver`] this
    /// way yields the same `sedex_*` counters a live observer would have
    /// accumulated during the run, so a registry can be populated either
    /// way and render consistently.
    pub fn replay(&self, obs: &dyn Observer) {
        for (phase, nanos) in self.phases.iter() {
            if nanos > 0 {
                obs.event(&Event::Phase { phase, nanos });
            }
        }
        if self.scripts_reused > 0 {
            obs.event(&Event::RepoLookup {
                hit: true,
                count: self.scripts_reused as u64,
            });
        }
        if self.scripts_generated > 0 {
            obs.event(&Event::RepoLookup {
                hit: false,
                count: self.scripts_generated as u64,
            });
        }
        if self.merged > 0 {
            obs.event(&Event::EgdMerge {
                count: self.merged as u64,
            });
        }
        if self.violations > 0 {
            obs.event(&Event::Violation {
                count: self.violations as u64,
            });
        }
        if self.inserted > 0 {
            obs.event(&Event::RowsInserted {
                count: self.inserted as u64,
            });
        }
        if self.hit_events_dropped > 0 {
            obs.event(&Event::HitEventsDropped {
                count: self.hit_events_dropped as u64,
            });
        }
        obs.event(&Event::Exchange {
            nanos: self.total_time().as_nanos() as u64,
            tuples: self.tuples_processed as u64,
            count: 1,
        });
    }

    /// Record this report's counters into a [`MetricsRegistry`] under the
    /// standard `sedex_*` names (see [`sedex_observe::names`]). Use this
    /// for batch runs with no live observer attached; do not combine both
    /// on one registry or the run is counted twice.
    pub fn record_into(&self, registry: &MetricsRegistry) {
        self.replay(&RegistryObserver::new(registry));
    }

    /// Windowed hit ratio: `n_r / (n_r + n_g)` computed over each of
    /// `buckets` equal time windows (the paper defines the ratio over a
    /// *period* `t`, so dips appear when a new relation's shapes arrive).
    /// Empty windows repeat the previous ratio. Returns `(window end,
    /// ratio)` pairs.
    pub fn windowed_hit_ratio_curve(&self, buckets: usize) -> Vec<(Duration, f64)> {
        if self.hit_events.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let end = self
            .hit_events
            .last()
            .map(|e| e.at)
            .unwrap_or_default()
            .max(Duration::from_nanos(1));
        let mut out = Vec::with_capacity(buckets);
        let mut idx = 0usize;
        let mut prev_ratio = 0.0;
        for b in 1..=buckets {
            let cutoff = end.mul_f64(b as f64 / buckets as f64);
            let mut hits = 0usize;
            let mut total = 0usize;
            while idx < self.hit_events.len() && self.hit_events[idx].at <= cutoff {
                total += 1;
                if self.hit_events[idx].hit {
                    hits += 1;
                }
                idx += 1;
            }
            let ratio = if total == 0 {
                prev_ratio
            } else {
                hits as f64 / total as f64
            };
            prev_ratio = ratio;
            out.push((cutoff, ratio));
        }
        out
    }

    /// Warm-up detail: cumulative hit ratio after the first
    /// 1, 2, 4, 8, … lookups — the "very low at the beginning, then sharply
    /// increases" pattern of Fig. 14 at lookup granularity.
    pub fn warmup_curve(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut hits = 0usize;
        let mut next_sample = 1usize;
        for (i, e) in self.hit_events.iter().enumerate() {
            if e.hit {
                hits += 1;
            }
            if i + 1 == next_sample {
                out.push((i + 1, hits as f64 / (i + 1) as f64));
                next_sample *= 2;
            }
        }
        if let Some(last) = self.hit_events.len().checked_sub(1) {
            if last + 1 != next_sample / 2 {
                out.push((last + 1, hits as f64 / (last + 1) as f64));
            }
        }
        out
    }

    /// The Fig. 14 curve: cumulative hit ratio sampled at `buckets` equal
    /// time intervals over the run. Returns `(time, ratio)` pairs.
    pub fn hit_ratio_curve(&self, buckets: usize) -> Vec<(Duration, f64)> {
        if self.hit_events.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let end = self
            .hit_events
            .last()
            .map(|e| e.at)
            .unwrap_or_default()
            .max(Duration::from_nanos(1));
        let mut out = Vec::with_capacity(buckets);
        let mut idx = 0usize;
        let mut hits = 0usize;
        let mut total = 0usize;
        for b in 1..=buckets {
            let cutoff = end.mul_f64(b as f64 / buckets as f64);
            while idx < self.hit_events.len() && self.hit_events[idx].at <= cutoff {
                total += 1;
                if self.hit_events[idx].hit {
                    hits += 1;
                }
                idx += 1;
            }
            let ratio = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            out.push((cutoff, ratio));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_and_reuse_percent() {
        let r = ExchangeReport {
            scripts_generated: 25,
            scripts_reused: 75,
            ..ExchangeReport::default()
        };
        assert!((r.hit_ratio() - 0.75).abs() < 1e-12);
        assert!((r.reuse_percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = ExchangeReport::default();
        assert_eq!(r.hit_ratio(), 0.0);
        assert!(r.hit_ratio_curve(10).is_empty());
    }

    #[test]
    fn curve_is_cumulative_and_increasing_for_warmup_pattern() {
        // Misses first, then hits — the Fig. 14 pattern: ratio rises.
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(HitEvent {
                at: Duration::from_millis(i),
                hit: false,
            });
        }
        for i in 10..100 {
            events.push(HitEvent {
                at: Duration::from_millis(i),
                hit: true,
            });
        }
        let r = ExchangeReport {
            hit_events: events,
            ..ExchangeReport::default()
        };
        let curve = r.hit_ratio_curve(10);
        assert_eq!(curve.len(), 10);
        assert!(curve.first().unwrap().1 < curve.last().unwrap().1);
        assert!(curve.last().unwrap().1 > 0.85);
    }

    #[test]
    fn total_time_sums_phases() {
        let r = ExchangeReport {
            tg: Duration::from_secs(2),
            te: Duration::from_secs(3),
            ..ExchangeReport::default()
        };
        assert_eq!(r.total_time(), Duration::from_secs(5));
    }

    fn events_at_millis(specs: &[(u64, bool)]) -> Vec<HitEvent> {
        specs
            .iter()
            .map(|&(ms, hit)| HitEvent {
                at: Duration::from_millis(ms),
                hit,
            })
            .collect()
    }

    #[test]
    fn windowed_curve_empty_windows_carry_the_previous_ratio_forward() {
        // All events land in the first tenth of the run: every later
        // window is empty and must repeat the last computed ratio, not
        // reset to zero.
        let r = ExchangeReport {
            hit_events: events_at_millis(&[(1, false), (2, true), (3, true), (100, true)]),
            ..ExchangeReport::default()
        };
        let curve = r.windowed_hit_ratio_curve(10);
        assert_eq!(curve.len(), 10);
        // Window 1 (0..10ms]: 1 miss + 2 hits = 2/3.
        assert!((curve[0].1 - 2.0 / 3.0).abs() < 1e-12, "{curve:?}");
        // Windows 2..9 are empty: the 2/3 ratio is carried forward.
        for w in &curve[1..9] {
            assert!((w.1 - 2.0 / 3.0).abs() < 1e-12, "{curve:?}");
        }
        // The final window holds the lone trailing hit: ratio 1.
        assert_eq!(curve[9].1, 1.0, "{curve:?}");
    }

    #[test]
    fn windowed_curve_leading_empty_windows_repeat_zero() {
        // Nothing before 95ms: the leading windows have no lookups and no
        // predecessor, so they report 0 until data arrives.
        let r = ExchangeReport {
            hit_events: events_at_millis(&[(95, true), (100, true)]),
            ..ExchangeReport::default()
        };
        let curve = r.windowed_hit_ratio_curve(10);
        for w in &curve[..9] {
            assert_eq!(w.1, 0.0, "{curve:?}");
        }
        assert_eq!(curve[9].1, 1.0, "{curve:?}");
    }

    #[test]
    fn windowed_curve_degenerate_inputs() {
        let empty = ExchangeReport::default();
        assert!(empty.windowed_hit_ratio_curve(10).is_empty());
        let r = ExchangeReport {
            hit_events: events_at_millis(&[(1, true)]),
            ..ExchangeReport::default()
        };
        assert!(r.windowed_hit_ratio_curve(0).is_empty());
        let one = r.windowed_hit_ratio_curve(1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].1, 1.0);
    }

    #[test]
    fn warmup_curve_len_exactly_a_power_of_two_has_no_duplicate_tail() {
        // 8 events: samples at 1, 2, 4, 8 — the final event IS the last
        // power-of-two sample, so no extra tail point may be appended.
        let specs: Vec<(u64, bool)> = (0..8).map(|i| (i, i >= 2)).collect();
        let r = ExchangeReport {
            hit_events: events_at_millis(&specs),
            ..ExchangeReport::default()
        };
        let curve = r.warmup_curve();
        let points: Vec<usize> = curve.iter().map(|&(n, _)| n).collect();
        assert_eq!(points, vec![1, 2, 4, 8], "{curve:?}");
        // Cumulative ratio after all 8: 6 hits / 8.
        assert!((curve.last().unwrap().1 - 0.75).abs() < 1e-12, "{curve:?}");
    }

    #[test]
    fn warmup_curve_non_power_of_two_appends_the_final_point() {
        let specs: Vec<(u64, bool)> = (0..6).map(|i| (i, true)).collect();
        let r = ExchangeReport {
            hit_events: events_at_millis(&specs),
            ..ExchangeReport::default()
        };
        let points: Vec<usize> = r.warmup_curve().iter().map(|&(n, _)| n).collect();
        // Samples at 1, 2, 4, then the trailing point at 6.
        assert_eq!(points, vec![1, 2, 4, 6]);
    }

    #[test]
    fn warmup_curve_len_zero_and_one() {
        let none = ExchangeReport::default();
        assert!(none.warmup_curve().is_empty());

        let one = ExchangeReport {
            hit_events: events_at_millis(&[(0, false)]),
            ..ExchangeReport::default()
        };
        let curve = one.warmup_curve();
        assert_eq!(curve, vec![(1, 0.0)]);
    }

    #[test]
    fn record_into_matches_live_observer_mapping() {
        use sedex_observe::{names, Phase};
        let mut phases = PhaseTotals::new();
        phases.add(Phase::Match, 1_000);
        let r = ExchangeReport {
            tuples_processed: 20,
            scripts_generated: 2,
            scripts_reused: 18,
            inserted: 20,
            merged: 3,
            violations: 1,
            tg: Duration::from_millis(4),
            te: Duration::from_millis(1),
            phases,
            ..ExchangeReport::default()
        };
        let reg = MetricsRegistry::new();
        r.record_into(&reg);
        assert_eq!(reg.counter_value(names::EXCHANGE_TOTAL), Some(1));
        assert_eq!(reg.counter_value(names::TUPLES_TOTAL), Some(20));
        assert_eq!(reg.counter_value(names::ROWS_INSERTED_TOTAL), Some(20));
        assert_eq!(reg.counter_value(names::EGD_MERGE_TOTAL), Some(3));
        assert_eq!(reg.counter_value(names::VIOLATION_TOTAL), Some(1));
        let text = sedex_observe::render_prometheus(&reg);
        assert!(
            text.contains("sedex_repo_lookup_total{result=\"hit\"} 18"),
            "{text}"
        );
        assert!(
            text.contains("sedex_repo_lookup_total{result=\"miss\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("sedex_phase_seconds_count{phase=\"match\"} 1"),
            "{text}"
        );
    }
}
