//! Exchange reports: the measurements the paper's figures are built from.

use std::time::Duration;

use sedex_storage::InstanceStats;

/// One script-repository lookup, timestamped relative to the start of the
/// exchange — the raw data behind the hit-ratio curve of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitEvent {
    /// Time since the exchange started.
    pub at: Duration,
    /// Whether the lookup was a hit.
    pub hit: bool,
}

/// Counters and timings of one SEDEX (or EDEX) exchange run.
#[derive(Debug, Clone, Default)]
pub struct ExchangeReport {
    /// Target-instance statistics (the quality measure of Figs. 9–10).
    pub stats: InstanceStats,
    /// Script generation time `Tg`: tree building, matching, translation,
    /// script generation and repository bookkeeping.
    pub tg: Duration,
    /// Script execution time `Te`: running insertion statements under egds.
    pub te: Duration,
    /// Source tuples processed directly.
    pub tuples_processed: usize,
    /// Source tuples skipped because they were already *seen* through a
    /// referencing tuple (Section 4.2).
    pub tuples_skipped_seen: usize,
    /// Freshly generated scripts (`n_g`).
    pub scripts_generated: usize,
    /// Script reuses (`n_r`).
    pub scripts_reused: usize,
    /// Tuples with no usable correspondence (nothing inserted).
    pub tuples_unmatched: usize,
    /// Rows inserted into the target.
    pub inserted: usize,
    /// egd merges performed during script runs.
    pub merged: usize,
    /// Hard egd violations.
    pub violations: usize,
    /// Timestamped repository lookups (only when event recording is on).
    pub hit_events: Vec<HitEvent>,
}

impl ExchangeReport {
    /// Total wall time.
    pub fn total_time(&self) -> Duration {
        self.tg + self.te
    }

    /// Final hit ratio `n_r / (n_r + n_g)`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.scripts_reused + self.scripts_generated;
        if total == 0 {
            0.0
        } else {
            self.scripts_reused as f64 / total as f64
        }
    }

    /// Percentage of lookups that reused a script — the Fig. 15 measure.
    pub fn reuse_percent(&self) -> f64 {
        self.hit_ratio() * 100.0
    }

    /// Windowed hit ratio: `n_r / (n_r + n_g)` computed over each of
    /// `buckets` equal time windows (the paper defines the ratio over a
    /// *period* `t`, so dips appear when a new relation's shapes arrive).
    /// Empty windows repeat the previous ratio. Returns `(window end,
    /// ratio)` pairs.
    pub fn windowed_hit_ratio_curve(&self, buckets: usize) -> Vec<(Duration, f64)> {
        if self.hit_events.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let end = self
            .hit_events
            .last()
            .map(|e| e.at)
            .unwrap_or_default()
            .max(Duration::from_nanos(1));
        let mut out = Vec::with_capacity(buckets);
        let mut idx = 0usize;
        let mut prev_ratio = 0.0;
        for b in 1..=buckets {
            let cutoff = end.mul_f64(b as f64 / buckets as f64);
            let mut hits = 0usize;
            let mut total = 0usize;
            while idx < self.hit_events.len() && self.hit_events[idx].at <= cutoff {
                total += 1;
                if self.hit_events[idx].hit {
                    hits += 1;
                }
                idx += 1;
            }
            let ratio = if total == 0 {
                prev_ratio
            } else {
                hits as f64 / total as f64
            };
            prev_ratio = ratio;
            out.push((cutoff, ratio));
        }
        out
    }

    /// Warm-up detail: cumulative hit ratio after the first
    /// 1, 2, 4, 8, … lookups — the "very low at the beginning, then sharply
    /// increases" pattern of Fig. 14 at lookup granularity.
    pub fn warmup_curve(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut hits = 0usize;
        let mut next_sample = 1usize;
        for (i, e) in self.hit_events.iter().enumerate() {
            if e.hit {
                hits += 1;
            }
            if i + 1 == next_sample {
                out.push((i + 1, hits as f64 / (i + 1) as f64));
                next_sample *= 2;
            }
        }
        if let Some(last) = self.hit_events.len().checked_sub(1) {
            if last + 1 != next_sample / 2 {
                out.push((last + 1, hits as f64 / (last + 1) as f64));
            }
        }
        out
    }

    /// The Fig. 14 curve: cumulative hit ratio sampled at `buckets` equal
    /// time intervals over the run. Returns `(time, ratio)` pairs.
    pub fn hit_ratio_curve(&self, buckets: usize) -> Vec<(Duration, f64)> {
        if self.hit_events.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let end = self
            .hit_events
            .last()
            .map(|e| e.at)
            .unwrap_or_default()
            .max(Duration::from_nanos(1));
        let mut out = Vec::with_capacity(buckets);
        let mut idx = 0usize;
        let mut hits = 0usize;
        let mut total = 0usize;
        for b in 1..=buckets {
            let cutoff = end.mul_f64(b as f64 / buckets as f64);
            while idx < self.hit_events.len() && self.hit_events[idx].at <= cutoff {
                total += 1;
                if self.hit_events[idx].hit {
                    hits += 1;
                }
                idx += 1;
            }
            let ratio = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            out.push((cutoff, ratio));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_and_reuse_percent() {
        let r = ExchangeReport {
            scripts_generated: 25,
            scripts_reused: 75,
            ..ExchangeReport::default()
        };
        assert!((r.hit_ratio() - 0.75).abs() < 1e-12);
        assert!((r.reuse_percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = ExchangeReport::default();
        assert_eq!(r.hit_ratio(), 0.0);
        assert!(r.hit_ratio_curve(10).is_empty());
    }

    #[test]
    fn curve_is_cumulative_and_increasing_for_warmup_pattern() {
        // Misses first, then hits — the Fig. 14 pattern: ratio rises.
        let mut events = Vec::new();
        for i in 0..10 {
            events.push(HitEvent {
                at: Duration::from_millis(i),
                hit: false,
            });
        }
        for i in 10..100 {
            events.push(HitEvent {
                at: Duration::from_millis(i),
                hit: true,
            });
        }
        let r = ExchangeReport {
            hit_events: events,
            ..ExchangeReport::default()
        };
        let curve = r.hit_ratio_curve(10);
        assert_eq!(curve.len(), 10);
        assert!(curve.first().unwrap().1 < curve.last().unwrap().1);
        assert!(curve.last().unwrap().1 > 0.85);
    }

    #[test]
    fn total_time_sums_phases() {
        let r = ExchangeReport {
            tg: Duration::from_secs(2),
            te: Duration::from_secs(3),
            ..ExchangeReport::default()
        };
        assert_eq!(r.total_time(), Duration::from_secs(5));
    }
}
