//! Script generation — Algorithm 2 (Section 4.4.2).
//!
//! The translated tuple tree is processed **bottom-up**: "since the
//! referenced entities must be inserted before those referencing other
//! entities", deeper nodes' statements are emitted first. A node that
//! identifies tuples (the root, or an FK property) may expand into *several*
//! relations — its own relation and/or key-to-key links (vertical
//! partitioning) — so one statement is emitted per expansion, each taking
//! that relation's key from the node and the columns from the children owned
//! by that relation. This realizes the paper's "relation in the target where
//! its properties match `C(Tj)`" lookup, resolved at relation-tree
//! construction time.

use sedex_pqgram::PqLabel;
use sedex_storage::Schema;

use crate::script::{Script, SlotRef, Statement};
use crate::translate::TranslatedTree;

/// Generate the insertion script for a translated tuple tree.
///
/// Statements are ordered deepest-first (children before parents), so
/// referenced entities are inserted before referencing ones. Statements that
/// would assign no column are skipped.
pub fn generate_script(ty: &TranslatedTree, target: &Schema) -> Script {
    let mut nodes: Vec<(usize, usize)> = ty
        .tree
        .preorder()
        .into_iter()
        .map(|id| (id, ty.tree.depth(id)))
        .collect();
    // Deepest first; ties broken by arena id for determinism.
    nodes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let mut statements = Vec::new();
    for (id, _) in nodes {
        let expansions = &ty.meta[id].expands_to;
        if expansions.is_empty() {
            continue; // a plain property: carried by its parent's statement
        }
        let is_root = id == ty.tree.root();
        if ty.tree.children(id).is_empty() && !is_root {
            // An FK leaf: its value is carried by the parent's statement.
            continue;
        }
        let node_slot = match ty.tree.label(id) {
            PqLabel::Label(n) => Some(n.src),
            PqLabel::Dummy => None,
        };
        for (rel_name, key_col) in expansions {
            let Some(rel) = target.relation(rel_name) else {
                continue;
            };
            let mut assignments: Vec<(usize, SlotRef)> = Vec::new();
            if let (Some(slot), false) = (node_slot, key_col.is_empty()) {
                if let Some(col) = rel.column_index(key_col) {
                    assignments.push((col, slot));
                }
            }
            for &c in ty.tree.children(id) {
                // Only children owned by this expansion's relation.
                if ty.meta[c].owner.as_deref() != Some(rel_name.as_str()) {
                    continue;
                }
                if let PqLabel::Label(n) = ty.tree.label(c) {
                    if let Some(col) = rel.column_index(&n.prop) {
                        assignments.push((col, n.src));
                    }
                }
            }
            if !assignments.is_empty() {
                statements.push(Statement {
                    relation: rel_name.clone(),
                    assignments,
                });
            }
        }
    }
    Script { statements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::run_script;
    use crate::translate::{slot_values, translate};
    use sedex_mapping::Correspondences;
    use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Value};
    use sedex_treerep::{relation_tree, tuple_tree, TreeConfig};

    fn university_source() -> Instance {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        let schema = Schema::from_relations(vec![student, prof, dep, reg]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)
            .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
            p,
        )
        .unwrap();
        inst.insert("Registration", sedex_storage::tuple!["s1", "c1", "dt1"], p)
            .unwrap();
        inst
    }

    fn target_schema() -> Schema {
        let stu =
            RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt", "supervisor"])
                .primary_key(&["student"])
                .unwrap();
        let course = RelationSchema::with_any_columns("Course", &["cname", "credit"])
            .primary_key(&["cname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Reg", &["student", "cname", "date"])
            .foreign_key(&["student"], "Stu")
            .unwrap()
            .foreign_key(&["cname"], "Course")
            .unwrap();
        Schema::from_relations(vec![stu, course, reg]).unwrap()
    }

    fn paper_sigma() -> Correspondences {
        Correspondences::from_name_pairs([
            ("sname", "student"),
            ("course", "cname"),
            ("regdate", "date"),
            ("program", "prog"),
            ("dep", "dpt"),
        ])
    }

    #[test]
    fn registration_script_inserts_stu_before_reg() {
        let inst = university_source();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Reg", &cfg).unwrap();
        let ty = translate(&tx, &tr, &paper_sigma());
        let script = generate_script(&ty, &tgt);
        let rels: Vec<&str> = script
            .statements
            .iter()
            .map(|s| s.relation.as_str())
            .collect();
        assert_eq!(rels, vec!["Stu", "Reg"]);
    }

    #[test]
    fn running_the_script_materializes_fig8() {
        let inst = university_source();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Reg", &cfg).unwrap();
        let ty = translate(&tx, &tr, &paper_sigma());
        let script = generate_script(&ty, &tgt);
        let mut out = Instance::new(tgt.clone());
        run_script(&script, &slot_values(&tx), &mut out, &mut 0).unwrap();
        // Stu(s1, p1, d1, NULL) and Reg(s1, c1, dt1).
        assert_eq!(
            out.relation("Stu").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["s1", "p1", "d1", Value::Null]
        );
        assert_eq!(
            out.relation("Reg").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["s1", "c1", "dt1"]
        );
    }

    #[test]
    fn script_reuse_across_same_shape_tuples() {
        let mut inst = university_source();
        // A second registration with identical shape.
        inst.insert(
            "Registration",
            sedex_storage::tuple!["s1", "c2", "dt2"],
            ConflictPolicy::Allow,
        )
        .unwrap();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        let tx1 = tuple_tree(&inst, "Registration", 0, &cfg).unwrap();
        let tx2 = tuple_tree(&inst, "Registration", 1, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Reg", &cfg).unwrap();
        let ty1 = translate(&tx1, &tr, &paper_sigma());
        let script = generate_script(&ty1, &tgt);
        let mut out = Instance::new(tgt.clone());
        run_script(&script, &slot_values(&tx1), &mut out, &mut 0).unwrap();
        // Replay the SAME script with tx2's values — no re-translation.
        run_script(&script, &slot_values(&tx2), &mut out, &mut 0).unwrap();
        assert_eq!(out.relation("Reg").unwrap().len(), 2);
        // Stu merged by egd: one student entity.
        assert_eq!(out.relation("Stu").unwrap().len(), 1);
    }

    #[test]
    fn vertical_partitioning_emits_one_statement_per_expansion() {
        // Source R(k, a, b) → targets T1(k1, a2) with key-to-key link
        // k1→T2.k2, T2(k2, b2): the T1 relation tree root expands into BOTH
        // relations; the script must fill T1 and T2, keyed by the same slot.
        let r = RelationSchema::with_any_columns("R", &["k", "a", "b"])
            .primary_key(&["k"])
            .unwrap();
        let src_schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(src_schema);
        inst.insert(
            "R",
            sedex_storage::tuple!["k1", "av", "bv"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        let t2 = RelationSchema::with_any_columns("T2", &["k2", "b2"])
            .primary_key(&["k2"])
            .unwrap();
        let t1 = RelationSchema::with_any_columns("T1", &["k1", "a2"])
            .primary_key(&["k1"])
            .unwrap()
            .foreign_key(&["k1"], "T2")
            .unwrap();
        let tgt = Schema::from_relations(vec![t1, t2]).unwrap();
        let sigma =
            Correspondences::from_name_pairs([("k", "k1"), ("k", "k2"), ("a", "a2"), ("b", "b2")]);
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "R", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "T1", &cfg).unwrap();
        let ty = translate(&tx, &tr, &sigma);
        let script = generate_script(&ty, &tgt);
        assert_eq!(script.len(), 2, "{script:?}");
        let mut out = Instance::new(tgt.clone());
        run_script(&script, &slot_values(&tx), &mut out, &mut 0).unwrap();
        assert_eq!(
            out.relation("T1").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["k1", "av"],
            "{out}"
        );
        assert_eq!(
            out.relation("T2").unwrap().row(0).unwrap(),
            &sedex_storage::tuple!["k1", "bv"],
            "{out}"
        );
    }

    #[test]
    fn empty_translation_empty_script() {
        let inst = university_source();
        let tgt = target_schema();
        let cfg = TreeConfig::default();
        let tx = tuple_tree(&inst, "Dep", 0, &cfg).unwrap();
        let tr = relation_tree(&tgt, "Course", &cfg).unwrap();
        let ty = translate(&tx, &tr, &paper_sigma());
        let script = generate_script(&ty, &tgt);
        assert!(script.is_empty());
    }
}
