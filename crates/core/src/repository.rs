//! The script repository (Sections 4.4.2–4.4.3, Figs. 14–15).
//!
//! A hash table keyed by the post-order shape key of the (reduced) tuple
//! tree. On a **hit** the stored script is replayed with the new tuple's
//! values — no matching, translation or generation. On a **miss** the full
//! pipeline runs and the new script is stored. The repository records every
//! lookup with a timestamp so the hit-ratio curve of Fig. 14 can be
//! reproduced.
//!
//! Two long-lived-service concerns are handled here rather than in callers:
//!
//! * **Warm-start timeline**: exports carry the elapsed lookup-timeline
//!   offset, and imports resume from it — after a crash recovery the
//!   Fig. 14 curve continues where the previous process stopped instead of
//!   restarting at `t = 0`.
//! * **Bounded event log**: when event recording is on, the per-lookup
//!   buffer is capped ([`DEFAULT_EVENT_LIMIT`] unless overridden); lookups
//!   past the cap are counted as dropped instead of growing the buffer
//!   without bound between drains.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::HitEvent;
use crate::script::Script;

/// Default cap on the recorded hit-event buffer (one event is 17 bytes, so
/// this bounds the log at roughly 16 MiB between drains).
pub const DEFAULT_EVENT_LIMIT: usize = 1 << 20;

/// Shape-keyed script cache with hit/miss accounting.
#[derive(Debug)]
pub struct ScriptRepository {
    map: HashMap<String, Arc<Script>>,
    hits: usize,
    misses: usize,
    start: Instant,
    /// Lookup-timeline time already elapsed before `start` — nonzero after
    /// an import, so event timestamps continue the exporter's timeline.
    base_elapsed: Duration,
    record_events: bool,
    events: Vec<HitEvent>,
    event_limit: usize,
    events_dropped: u64,
    new_keys: Vec<String>,
}

/// A point-in-time export of a repository: every `(shape key, script)` pair
/// plus the lookup counters. This is what durability snapshots persist so a
/// restarted server *warm-starts* — the hit ratio continues from where the
/// previous process left off instead of resetting to zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepositoryExport {
    /// `(shape key, script)` pairs, sorted by key for a stable byte layout.
    pub entries: Vec<(String, Script)>,
    /// Lookup hits at export time.
    pub hits: usize,
    /// Lookup misses at export time.
    pub misses: usize,
    /// Lookup-timeline time elapsed at export time. Importing resumes the
    /// timeline here, so hit-event timestamps (Fig. 14) stay monotone
    /// across a snapshot/restore cycle.
    pub elapsed: Duration,
}

impl Default for ScriptRepository {
    fn default() -> Self {
        ScriptRepository::new(false)
    }
}

impl ScriptRepository {
    /// A fresh repository. With `record_events` every lookup is timestamped
    /// (needed only for the Fig. 14 experiment); the event buffer is capped
    /// at [`DEFAULT_EVENT_LIMIT`].
    pub fn new(record_events: bool) -> Self {
        ScriptRepository::with_event_limit(record_events, DEFAULT_EVENT_LIMIT)
    }

    /// A fresh repository with an explicit cap on the recorded-event
    /// buffer. Lookups past the cap (between drains) increment
    /// [`ScriptRepository::events_dropped`] instead of allocating.
    pub fn with_event_limit(record_events: bool, event_limit: usize) -> Self {
        ScriptRepository {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            start: Instant::now(),
            base_elapsed: Duration::ZERO,
            record_events,
            events: Vec::new(),
            event_limit,
            events_dropped: 0,
            new_keys: Vec::new(),
        }
    }

    /// Time elapsed on the lookup timeline — includes the timeline of any
    /// imported export (warm start).
    pub fn elapsed(&self) -> Duration {
        self.base_elapsed + self.start.elapsed()
    }

    /// Look a shape key up, recording a hit or a miss.
    pub fn lookup(&mut self, key: &str) -> Option<Arc<Script>> {
        let found = self.map.get(key).cloned();
        match &found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        if self.record_events {
            if self.events.len() < self.event_limit {
                self.events.push(HitEvent {
                    at: self.elapsed(),
                    hit: found.is_some(),
                });
            } else {
                self.events_dropped += 1;
            }
        }
        found
    }

    /// Whether a script is stored under `key` — no counters are touched
    /// (used by the parallel planner to find the distinct missing shapes of
    /// a batch before the serial lookup replay).
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Store a freshly generated script under its shape key. The key is
    /// remembered as *new* until the next [`ScriptRepository::take_new_scripts`]
    /// drain — how the service knows which scripts still need a WAL record.
    pub fn insert(&mut self, key: String, script: Script) -> Arc<Script> {
        let arc = Arc::new(script);
        self.new_keys.push(key.clone());
        self.map.insert(key, Arc::clone(&arc));
        arc
    }

    /// Drain the scripts inserted since the last drain, as `(key, script)`
    /// handles. Used by durability: after an exchange, each drained pair
    /// becomes one `ScriptAdd` WAL record.
    pub fn take_new_scripts(&mut self) -> Vec<(String, Arc<Script>)> {
        std::mem::take(&mut self.new_keys)
            .into_iter()
            .filter_map(|k| self.map.get(&k).map(|s| (k, Arc::clone(s))))
            .collect()
    }

    /// Export every entry plus the lookup counters (entries sorted by key)
    /// and the elapsed lookup-timeline offset.
    pub fn export(&self) -> RepositoryExport {
        let mut entries: Vec<(String, Script)> = self
            .map
            .iter()
            .map(|(k, s)| (k.clone(), Script::clone(s)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        RepositoryExport {
            entries,
            hits: self.hits,
            misses: self.misses,
            elapsed: self.elapsed(),
        }
    }

    /// Restore entries and counters from an export. Existing entries with
    /// the same key are overwritten (imports are idempotent); imported keys
    /// are *not* marked new — they were already persisted. The lookup
    /// timeline resumes at the export's elapsed offset, so hit-event
    /// timestamps stay monotone across a snapshot/restore cycle.
    pub fn import(&mut self, export: RepositoryExport) {
        for (key, script) in export.entries {
            self.map.insert(key, Arc::new(script));
        }
        self.hits = export.hits;
        self.misses = export.misses;
        self.base_elapsed = export.elapsed;
        self.start = Instant::now();
        self.new_keys.clear();
    }

    /// Install one script without touching counters or the new-key log —
    /// the WAL-replay path for `ScriptAdd` records.
    pub fn install(&mut self, key: String, script: Script) {
        self.map.insert(key, Arc::new(script));
    }

    /// Number of distinct scripts stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookup hits so far (`n_r` in the paper's hit-ratio definition).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookup misses so far (`n_g`).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// `n_r / (n_r + n_g)`, or 0 before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The recorded lookup events (empty unless event recording is on).
    pub fn events(&self) -> &[HitEvent] {
        &self.events
    }

    /// Events discarded because the buffer was at its cap when they
    /// occurred (`sedex_hit_events_dropped_total`).
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Drain the recorded events (used by the engine when assembling the
    /// final report). Frees the buffer, so recording resumes until the cap
    /// is reached again.
    pub fn take_events(&mut self) -> Vec<HitEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{SlotRef, Statement};

    fn dummy_script(rel: &str) -> Script {
        Script {
            statements: vec![Statement {
                relation: rel.into(),
                assignments: vec![(0, SlotRef::Src(0))],
            }],
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut r = ScriptRepository::new(false);
        assert!(r.lookup("k1").is_none());
        r.insert("k1".into(), dummy_script("T"));
        let s = r.lookup("k1").unwrap();
        assert_eq!(s.statements[0].relation, "T");
        assert_eq!(r.hits(), 1);
        assert_eq!(r.misses(), 1);
        assert!((r.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_are_distinct_scripts() {
        let mut r = ScriptRepository::new(false);
        r.insert("a".into(), dummy_script("T"));
        r.insert("b".into(), dummy_script("U"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.lookup("a").unwrap().statements[0].relation, "T");
        assert_eq!(r.lookup("b").unwrap().statements[0].relation, "U");
    }

    #[test]
    fn contains_does_not_count() {
        let mut r = ScriptRepository::new(false);
        assert!(!r.contains("k"));
        r.insert("k".into(), dummy_script("T"));
        assert!(r.contains("k"));
        assert_eq!((r.hits(), r.misses()), (0, 0));
    }

    #[test]
    fn event_recording() {
        let mut r = ScriptRepository::new(true);
        r.lookup("k");
        r.insert("k".into(), dummy_script("T"));
        r.lookup("k");
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert!(!ev[0].hit);
        assert!(ev[1].hit);
        assert!(ev[1].at >= ev[0].at);
        assert_eq!(r.events_dropped(), 0);
    }

    #[test]
    fn event_buffer_is_capped_and_drops_are_counted() {
        let mut r = ScriptRepository::with_event_limit(true, 3);
        r.insert("k".into(), dummy_script("T"));
        for _ in 0..10 {
            r.lookup("k");
        }
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.events_dropped(), 7);
        // Counters are unaffected by the cap.
        assert_eq!(r.hits(), 10);
        // Draining frees the buffer: recording resumes.
        assert_eq!(r.take_events().len(), 3);
        r.lookup("k");
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events_dropped(), 7);
    }

    #[test]
    fn hit_ratio_zero_when_unused() {
        let r = ScriptRepository::new(false);
        assert_eq!(r.hit_ratio(), 0.0);
    }

    #[test]
    fn export_import_roundtrips_entries_and_counters() {
        let mut r = ScriptRepository::new(false);
        r.lookup("b");
        r.insert("b".into(), dummy_script("T"));
        r.insert("a".into(), dummy_script("U"));
        r.lookup("b");
        let ex = r.export();
        assert_eq!(ex.entries.len(), 2);
        assert_eq!(ex.entries[0].0, "a"); // sorted
        assert_eq!((ex.hits, ex.misses), (1, 1));

        let mut back = ScriptRepository::new(false);
        back.import(ex.clone());
        assert_eq!(back.len(), 2);
        assert_eq!(back.hits(), 1);
        assert_eq!(back.misses(), 1);
        let round = back.export();
        assert_eq!(round.entries, ex.entries);
        assert_eq!((round.hits, round.misses), (ex.hits, ex.misses));
        // Imported keys are not "new": nothing to persist again.
        assert!(back.take_new_scripts().is_empty());
    }

    #[test]
    fn import_resumes_the_event_timeline() {
        let mut r = ScriptRepository::new(true);
        r.insert("k".into(), dummy_script("T"));
        r.lookup("k");
        std::thread::sleep(Duration::from_millis(5));
        let ex = r.export();
        let exported_elapsed = ex.elapsed;
        assert!(exported_elapsed >= Duration::from_millis(5));

        // The restored repository continues the exporter's timeline: a
        // lookup right after import is stamped *after* the export point,
        // not back at t = 0 (the Fig. 14 warm-start bug).
        let mut back = ScriptRepository::new(true);
        back.import(ex);
        assert!(back.elapsed() >= exported_elapsed);
        back.lookup("k");
        assert!(back.events()[0].at >= exported_elapsed);
    }

    #[test]
    fn take_new_scripts_drains_once() {
        let mut r = ScriptRepository::new(false);
        r.insert("k1".into(), dummy_script("T"));
        r.insert("k2".into(), dummy_script("U"));
        let new = r.take_new_scripts();
        assert_eq!(new.len(), 2);
        assert!(r.take_new_scripts().is_empty());
        r.insert("k3".into(), dummy_script("V"));
        let again = r.take_new_scripts();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].0, "k3");
    }
}
