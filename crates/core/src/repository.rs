//! The script repository (Sections 4.4.2–4.4.3, Figs. 14–15).
//!
//! A hash table keyed by the post-order shape key of the (reduced) tuple
//! tree. On a **hit** the stored script is replayed with the new tuple's
//! values — no matching, translation or generation. On a **miss** the full
//! pipeline runs and the new script is stored. The repository records every
//! lookup with a timestamp so the hit-ratio curve of Fig. 14 can be
//! reproduced.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::HitEvent;
use crate::script::Script;

/// Shape-keyed script cache with hit/miss accounting.
#[derive(Debug)]
pub struct ScriptRepository {
    map: HashMap<String, Arc<Script>>,
    hits: usize,
    misses: usize,
    start: Instant,
    record_events: bool,
    events: Vec<HitEvent>,
    new_keys: Vec<String>,
}

/// A point-in-time export of a repository: every `(shape key, script)` pair
/// plus the lookup counters. This is what durability snapshots persist so a
/// restarted server *warm-starts* — the hit ratio continues from where the
/// previous process left off instead of resetting to zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepositoryExport {
    /// `(shape key, script)` pairs, sorted by key for a stable byte layout.
    pub entries: Vec<(String, Script)>,
    /// Lookup hits at export time.
    pub hits: usize,
    /// Lookup misses at export time.
    pub misses: usize,
}

impl Default for ScriptRepository {
    fn default() -> Self {
        ScriptRepository::new(false)
    }
}

impl ScriptRepository {
    /// A fresh repository. With `record_events` every lookup is timestamped
    /// (needed only for the Fig. 14 experiment).
    pub fn new(record_events: bool) -> Self {
        ScriptRepository {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            start: Instant::now(),
            record_events,
            events: Vec::new(),
            new_keys: Vec::new(),
        }
    }

    /// Look a shape key up, recording a hit or a miss.
    pub fn lookup(&mut self, key: &str) -> Option<Arc<Script>> {
        let found = self.map.get(key).cloned();
        match &found {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        if self.record_events {
            self.events.push(HitEvent {
                at: self.start.elapsed(),
                hit: found.is_some(),
            });
        }
        found
    }

    /// Store a freshly generated script under its shape key. The key is
    /// remembered as *new* until the next [`ScriptRepository::take_new_scripts`]
    /// drain — how the service knows which scripts still need a WAL record.
    pub fn insert(&mut self, key: String, script: Script) -> Arc<Script> {
        let arc = Arc::new(script);
        self.new_keys.push(key.clone());
        self.map.insert(key, Arc::clone(&arc));
        arc
    }

    /// Drain the scripts inserted since the last drain, as `(key, script)`
    /// handles. Used by durability: after an exchange, each drained pair
    /// becomes one `ScriptAdd` WAL record.
    pub fn take_new_scripts(&mut self) -> Vec<(String, Arc<Script>)> {
        std::mem::take(&mut self.new_keys)
            .into_iter()
            .filter_map(|k| self.map.get(&k).map(|s| (k, Arc::clone(s))))
            .collect()
    }

    /// Export every entry plus the lookup counters (entries sorted by key).
    pub fn export(&self) -> RepositoryExport {
        let mut entries: Vec<(String, Script)> = self
            .map
            .iter()
            .map(|(k, s)| (k.clone(), Script::clone(s)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        RepositoryExport {
            entries,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restore entries and counters from an export. Existing entries with
    /// the same key are overwritten (imports are idempotent); imported keys
    /// are *not* marked new — they were already persisted.
    pub fn import(&mut self, export: RepositoryExport) {
        for (key, script) in export.entries {
            self.map.insert(key, Arc::new(script));
        }
        self.hits = export.hits;
        self.misses = export.misses;
        self.new_keys.clear();
    }

    /// Install one script without touching counters or the new-key log —
    /// the WAL-replay path for `ScriptAdd` records.
    pub fn install(&mut self, key: String, script: Script) {
        self.map.insert(key, Arc::new(script));
    }

    /// Number of distinct scripts stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookup hits so far (`n_r` in the paper's hit-ratio definition).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookup misses so far (`n_g`).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// `n_r / (n_r + n_g)`, or 0 before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The recorded lookup events (empty unless event recording is on).
    pub fn events(&self) -> &[HitEvent] {
        &self.events
    }

    /// Drain the recorded events (used by the engine when assembling the
    /// final report).
    pub fn take_events(&mut self) -> Vec<HitEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{SlotRef, Statement};

    fn dummy_script(rel: &str) -> Script {
        Script {
            statements: vec![Statement {
                relation: rel.into(),
                assignments: vec![(0, SlotRef::Src(0))],
            }],
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut r = ScriptRepository::new(false);
        assert!(r.lookup("k1").is_none());
        r.insert("k1".into(), dummy_script("T"));
        let s = r.lookup("k1").unwrap();
        assert_eq!(s.statements[0].relation, "T");
        assert_eq!(r.hits(), 1);
        assert_eq!(r.misses(), 1);
        assert!((r.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_are_distinct_scripts() {
        let mut r = ScriptRepository::new(false);
        r.insert("a".into(), dummy_script("T"));
        r.insert("b".into(), dummy_script("U"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.lookup("a").unwrap().statements[0].relation, "T");
        assert_eq!(r.lookup("b").unwrap().statements[0].relation, "U");
    }

    #[test]
    fn event_recording() {
        let mut r = ScriptRepository::new(true);
        r.lookup("k");
        r.insert("k".into(), dummy_script("T"));
        r.lookup("k");
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert!(!ev[0].hit);
        assert!(ev[1].hit);
        assert!(ev[1].at >= ev[0].at);
    }

    #[test]
    fn hit_ratio_zero_when_unused() {
        let r = ScriptRepository::new(false);
        assert_eq!(r.hit_ratio(), 0.0);
    }

    #[test]
    fn export_import_roundtrips_entries_and_counters() {
        let mut r = ScriptRepository::new(false);
        r.lookup("b");
        r.insert("b".into(), dummy_script("T"));
        r.insert("a".into(), dummy_script("U"));
        r.lookup("b");
        let ex = r.export();
        assert_eq!(ex.entries.len(), 2);
        assert_eq!(ex.entries[0].0, "a"); // sorted
        assert_eq!((ex.hits, ex.misses), (1, 1));

        let mut back = ScriptRepository::new(false);
        back.import(ex.clone());
        assert_eq!(back.len(), 2);
        assert_eq!(back.hits(), 1);
        assert_eq!(back.misses(), 1);
        assert_eq!(back.export(), ex);
        // Imported keys are not "new": nothing to persist again.
        assert!(back.take_new_scripts().is_empty());
    }

    #[test]
    fn take_new_scripts_drains_once() {
        let mut r = ScriptRepository::new(false);
        r.insert("k1".into(), dummy_script("T"));
        r.insert("k2".into(), dummy_script("U"));
        let new = r.take_new_scripts();
        assert_eq!(new.len(), 2);
        assert!(r.take_new_scripts().is_empty());
        r.insert("k3".into(), dummy_script("V"));
        let again = r.take_new_scripts();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].0, "k3");
    }
}
