//! The lock-free metrics registry: atomic counters, gauges, and
//! log2-bucketed latency histograms.
//!
//! Registration (name → handle) takes a registry lock once, on the cold
//! path; the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles are
//! plain atomics shared by `Arc`, so the hot path — incrementing a
//! counter, observing a latency — is a single relaxed atomic RMW with no
//! lock, no allocation, and no syscall.
//!
//! Histograms bucket durations by `ceil(log2(nanos))`: bucket `i` counts
//! observations `≤ 2^i` ns. Quantiles (p50/p90/p99) are estimated from
//! the bucket counts; exposition renders the buckets cumulatively in
//! Prometheus text format (see [`crate::expose`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Number of histogram buckets: `2^0` ns through `2^(BUCKETS-1)` ns
/// (~9 minutes); anything larger counts only toward `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed latency histogram over nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for a nanosecond value: smallest `i` with `nanos ≤ 2^i`,
/// or `HISTOGRAM_BUCKETS` for overflow (counted only toward `+Inf`).
fn bucket_index(nanos: u64) -> usize {
    if nanos <= 1 {
        return 0;
    }
    let i = 64 - (nanos - 1).leading_zeros() as usize; // ceil(log2(nanos))
    i.min(HISTOGRAM_BUCKETS)
}

/// Upper bound of bucket `i` in seconds.
pub(crate) fn bucket_bound_seconds(i: usize) -> f64 {
    (1u64 << i) as f64 / 1e9
}

impl Histogram {
    /// Record one observation of `nanos`.
    #[inline]
    pub fn observe_nanos(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        let idx = bucket_index(nanos);
        if idx < HISTOGRAM_BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one observation of a `Duration`.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_nanos(d.as_nanos() as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    /// Non-cumulative bucket counts (index `i` counts observations in
    /// `(2^(i-1), 2^i]` ns).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0 < q ≤ 1`) from the bucket counts,
    /// interpolating linearly inside the winning bucket. Returns zero
    /// before any observation.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let in_bucket = self.buckets[i].load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if cum + in_bucket >= target {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = 1u64 << i;
                let frac = (target - cum) as f64 / in_bucket as f64;
                let est = lower as f64 + frac * (upper - lower) as f64;
                return Duration::from_nanos(est as u64);
            }
            cum += in_bucket;
        }
        // Only overflow observations remain: report the largest bound.
        Duration::from_nanos(1u64 << (HISTOGRAM_BUCKETS - 1))
    }
}

/// The value side of one registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// An up/down gauge.
    Gauge(Arc<Gauge>),
    /// A log2 latency histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered series: label set + value handle.
#[derive(Debug, Clone)]
pub struct Series {
    /// `(label, value)` pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The metric handle.
    pub metric: Metric,
}

/// One metric family: help text plus every labeled series under the name.
#[derive(Debug, Clone, Default)]
pub struct Family {
    /// The `# HELP` text.
    pub help: String,
    /// Series keyed by their serialized label set.
    pub series: BTreeMap<String, Series>,
}

/// A registry of named metrics. Registration is locked (cold path);
/// returned handles are lock-free atomics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (k, v) in labels {
        out.push_str(k);
        out.push('=');
        out.push_str(v);
        out.push(';');
    }
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let mut families = self.families.write().expect("metrics registry poisoned");
        let family = families.entry(name.to_owned()).or_default();
        if family.help.is_empty() {
            family.help = help.to_owned();
        }
        let series = family
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Series {
                labels: labels
                    .iter()
                    .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                    .collect(),
                metric: make(),
            });
        series.metric.clone()
    }

    /// Get-or-create a counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            m => panic!("metric `{name}` already registered as a {}", m.kind()),
        }
    }

    /// Get-or-create a gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            m => panic!("metric `{name}` already registered as a {}", m.kind()),
        }
    }

    /// Get-or-create a histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::default()))
        }) {
            Metric::Histogram(h) => h,
            m => panic!("metric `{name}` already registered as a {}", m.kind()),
        }
    }

    /// Snapshot of every family, for rendering.
    pub fn snapshot(&self) -> BTreeMap<String, Family> {
        self.families
            .read()
            .expect("metrics registry poisoned")
            .clone()
    }

    /// Value of an unlabeled counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let families = self.families.read().expect("metrics registry poisoned");
        match &families.get(name)?.series.get(&label_key(&[]))?.metric {
            Metric::Counter(c) => Some(c.get()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sedex_test_total", "help");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name + labels → same handle.
        assert_eq!(reg.counter("sedex_test_total", "help").get(), 5);
        assert_eq!(reg.counter_value("sedex_test_total"), Some(5));

        let g = reg.gauge("sedex_depth", "help");
        g.set(7);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn labeled_series_are_independent() {
        let reg = MetricsRegistry::new();
        let hit = reg.counter_with("sedex_lookups_total", "h", &[("result", "hit")]);
        let miss = reg.counter_with("sedex_lookups_total", "h", &[("result", "miss")]);
        hit.add(3);
        miss.inc();
        assert_eq!(hit.get(), 3);
        assert_eq!(miss.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap["sedex_lookups_total"].series.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("sedex_x", "h");
        reg.gauge("sedex_x", "h");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS);

        let h = Histogram::default();
        h.observe_nanos(3); // bucket 2
        h.observe_nanos(4); // bucket 2
        h.observe_nanos(1000); // bucket 10
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), Duration::from_nanos(1007));
        let b = h.bucket_counts();
        assert_eq!(b[2], 2);
        assert_eq!(b[10], 1);
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(Duration::from_micros(10)); // ~2^14 ns region
        }
        for _ in 0..10 {
            h.observe(Duration::from_millis(5)); // ~2^23 ns region
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50:?} {p90:?} {p99:?}");
        // p50 must land in the fast group's bucket range, p99 in the slow.
        assert!(p50 < Duration::from_micros(20), "{p50:?}");
        assert!(p99 > Duration::from_millis(2), "{p99:?}");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.quantile(1.0), Duration::ZERO);
        assert_eq!(h.quantile(0.000001), Duration::ZERO);
    }

    #[test]
    fn single_sample_pins_every_quantile_to_its_bucket_bound() {
        // One observation: any q resolves to target=1, frac=1, so every
        // quantile reports the same estimate — the bucket's upper bound.
        let h = Histogram::default();
        h.observe_nanos(1000); // bucket (512, 1024]
        let expected = Duration::from_nanos(1024);
        assert_eq!(h.quantile(0.01), expected);
        assert_eq!(h.quantile(0.5), expected);
        assert_eq!(h.quantile(0.99), expected);
        assert_eq!(h.quantile(1.0), expected);
    }

    #[test]
    fn exact_power_of_two_lands_on_its_bucket_boundary() {
        // Buckets are (2^(i-1), 2^i]: an exact power of two belongs to the
        // lower bucket, one past it to the next.
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        let h = Histogram::default();
        h.observe_nanos(1024);
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1024));
        assert_eq!(h.bucket_counts()[10], 1);
    }

    #[test]
    fn saturating_top_bucket_caps_the_quantile_estimate() {
        // One sample at the last finite bound, one beyond every bucket:
        // quantiles at and past the overflow report the largest bound
        // rather than extrapolating.
        let top = 1u64 << (HISTOGRAM_BUCKETS - 1);
        let h = Histogram::default();
        h.observe_nanos(top);
        h.observe_nanos(u64::MAX);
        assert_eq!(h.bucket_counts()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.quantile(0.5), Duration::from_nanos(top));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(top));
    }

    #[test]
    fn overflow_observations_count_toward_inf_only() {
        let h = Histogram::default();
        h.observe(Duration::from_secs(3600)); // beyond the last bucket
        assert_eq!(h.count(), 1);
        assert!(h.bucket_counts().iter().all(|&c| c == 0));
        assert!(h.quantile(0.5) >= Duration::from_nanos(1 << (HISTOGRAM_BUCKETS - 1)));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = MetricsRegistry::global() as *const _;
        let b = MetricsRegistry::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_hot_path_is_consistent() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sedex_par_total", "h");
        let h = reg.histogram("sedex_par_seconds", "h");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe_nanos(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }
}
