//! The event taxonomy: pipeline phases, structured trace events, the
//! [`Observer`] sink, and cheap [`Span`] timers.
//!
//! Every stage of the SEDEX pipeline (Fig. 1) maps to a [`Phase`]; the
//! engine emits one [`Event`] per phase span, repository lookup, egd
//! merge, violation, and completed exchange. Observers are passive sinks:
//! the engine never blocks on them, and when no observer is attached the
//! tracing hooks collapse to a `None` check — no clock reads, no
//! allocation, no atomic writes.

use std::time::{Duration, Instant};

/// A timed stage of the exchange pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Building tuple trees from source rows (Section 4.2).
    TreeBuild,
    /// The pq-gram `Match` function (Section 4.3).
    Match,
    /// Tuple-tree translation, Algorithm 1.
    Translate,
    /// Insertion-script generation, Algorithm 2.
    ScriptGen,
    /// Script execution under target egds (Section 4.4.3).
    ScriptRun,
}

impl Phase {
    /// Number of phases (array dimension for [`PhaseTotals`]).
    pub const COUNT: usize = 5;

    /// All phases in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::TreeBuild,
        Phase::Match,
        Phase::Translate,
        Phase::ScriptGen,
        Phase::ScriptRun,
    ];

    /// The snake_case label used in metrics and log records.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::TreeBuild => "tree_build",
            Phase::Match => "match",
            Phase::Translate => "translate",
            Phase::ScriptGen => "scriptgen",
            Phase::ScriptRun => "script_run",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::TreeBuild => 0,
            Phase::Match => 1,
            Phase::Translate => 2,
            Phase::ScriptGen => 3,
            Phase::ScriptRun => 4,
        }
    }
}

/// Accumulated nanoseconds per phase — the breakdown carried by slow-
/// exchange records and by `ExchangeReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    nanos: [u64; Phase::COUNT],
}

impl PhaseTotals {
    /// All-zero totals.
    pub fn new() -> Self {
        PhaseTotals::default()
    }

    /// Add `nanos` to a phase.
    #[inline]
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
    }

    /// Accumulated time in one phase.
    pub fn get(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase.index()])
    }

    /// Accumulated nanoseconds in one phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// `(phase, accumulated nanos)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(|&p| (p, self.nanos[p.index()]))
    }

    /// True when nothing was recorded.
    pub fn is_zero(&self) -> bool {
        self.nanos.iter().all(|&n| n == 0)
    }
}

/// One structured trace event. Count-carrying variants let a finished
/// report be replayed into an observer as aggregates (one event per kind)
/// instead of one event per tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event<'a> {
    /// A phase span ended (or an aggregate of many spans when replayed).
    Phase {
        /// Which pipeline stage.
        phase: Phase,
        /// Wall time spent, in nanoseconds.
        nanos: u64,
    },
    /// Script-repository lookups (`repo_lookup{hit}`).
    RepoLookup {
        /// Whether a cached script was found.
        hit: bool,
        /// Number of lookups with this outcome.
        count: u64,
    },
    /// Target-egd merges performed while running scripts.
    EgdMerge {
        /// Number of merges.
        count: u64,
    },
    /// Hard egd violations (statement dropped, existing tuple kept).
    Violation {
        /// Number of violations.
        count: u64,
    },
    /// Rows inserted into the target.
    RowsInserted {
        /// Number of rows.
        count: u64,
    },
    /// One or more exchanges completed.
    Exchange {
        /// Total wall time across the counted exchanges, nanoseconds.
        nanos: u64,
        /// Source tuples processed.
        tuples: u64,
        /// Number of exchanges (1 for a live event).
        count: u64,
    },
    /// Recorded hit events discarded because the repository's event buffer
    /// was at its cap (long-lived sessions that rarely drain).
    HitEventsDropped {
        /// Number of events dropped.
        count: u64,
    },
    /// An exchange exceeded the configured slow threshold.
    SlowExchange {
        /// Total exchange wall time, nanoseconds.
        nanos: u64,
        /// The configured threshold, nanoseconds.
        threshold_nanos: u64,
        /// Per-phase breakdown.
        phases: &'a PhaseTotals,
    },
}

/// A passive sink for trace events. Implementations must be cheap and
/// non-blocking: the engine calls them on its hot path.
pub trait Observer: Send + Sync {
    /// Receive one event.
    fn event(&self, e: &Event);
}

/// The zero-overhead default: discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn event(&self, _e: &Event) {}
}

/// A cheap phase timer: reads the clock only when an observer is present,
/// and emits a single [`Event::Phase`] when finished or dropped.
///
/// ```
/// use sedex_observe::{Event, Observer, Phase, Span};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// #[derive(Default)]
/// struct Count(AtomicU64);
/// impl Observer for Count {
///     fn event(&self, _e: &Event) {
///         self.0.fetch_add(1, Ordering::Relaxed);
///     }
/// }
///
/// let obs = Count::default();
/// Span::start(Some(&obs), Phase::Match).finish();
/// assert_eq!(obs.0.load(Ordering::Relaxed), 1);
///
/// // No observer: the span is inert — no clock read, nothing emitted.
/// let inert = Span::start(None, Phase::Match);
/// assert!(!inert.is_recording());
/// inert.finish();
/// ```
pub struct Span<'a> {
    rec: Option<(&'a dyn Observer, Phase, Instant)>,
}

impl<'a> Span<'a> {
    /// Start a span. With `obs == None` this does nothing at all (not even
    /// a clock read).
    #[inline]
    pub fn start(obs: Option<&'a dyn Observer>, phase: Phase) -> Self {
        Span {
            rec: obs.map(|o| (o, phase, Instant::now())),
        }
    }

    /// Whether the span is live (an observer is attached).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// End the span, emitting its [`Event::Phase`]. Dropping the span has
    /// the same effect; `finish` just makes the end explicit.
    #[inline]
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some((obs, phase, started)) = self.rec.take() {
            obs.event(&Event::Phase {
                phase,
                nanos: started.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Format the one-line structured slow-exchange record:
///
/// ```text
/// slow_exchange total_ms=12.345 threshold_ms=10.000 tuples=811 session=acme verb=PUSH tree_build_ms=4.100 match_ms=...
/// ```
///
/// `session` and `verb` attribute the record under multi-tenant load; pass
/// `None` on paths that have neither (the batch engine) and the fields are
/// omitted.
pub fn slow_exchange_record(
    total: Duration,
    threshold: Duration,
    tuples: u64,
    phases: &PhaseTotals,
    session: Option<&str>,
    verb: Option<&str>,
) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut out = format!(
        "slow_exchange total_ms={:.3} threshold_ms={:.3} tuples={}",
        ms(total),
        ms(threshold),
        tuples
    );
    if let Some(s) = session {
        out.push_str(&format!(" session={s}"));
    }
    if let Some(v) = verb {
        out.push_str(&format!(" verb={v}"));
    }
    for (phase, nanos) in phases.iter() {
        out.push_str(&format!(" {}_ms={:.3}", phase.as_str(), nanos as f64 / 1e6));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[derive(Default)]
    struct Sink {
        events: Mutex<Vec<String>>,
        calls: AtomicU64,
    }

    impl Observer for Sink {
        fn event(&self, e: &Event) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.events.lock().unwrap().push(format!("{e:?}"));
        }
    }

    #[test]
    fn span_emits_phase_event_on_finish_and_on_drop() {
        let sink = Sink::default();
        Span::start(Some(&sink), Phase::TreeBuild).finish();
        {
            let _dropped = Span::start(Some(&sink), Phase::ScriptRun);
        }
        assert_eq!(sink.calls.load(Ordering::Relaxed), 2);
        let ev = sink.events.lock().unwrap();
        assert!(ev[0].contains("TreeBuild"), "{ev:?}");
        assert!(ev[1].contains("ScriptRun"), "{ev:?}");
    }

    #[test]
    fn noop_span_emits_nothing_and_reads_no_clock() {
        // The no-op path must be verifiable: the span reports that it is
        // not recording, and finishing it calls no observer.
        let span = Span::start(None, Phase::Match);
        assert!(!span.is_recording());
        span.finish();
        // NoopObserver is also inert by construction.
        NoopObserver.event(&Event::Violation { count: 1 });
    }

    #[test]
    fn phase_totals_accumulate_and_iterate_in_order() {
        let mut t = PhaseTotals::new();
        assert!(t.is_zero());
        t.add(Phase::Match, 100);
        t.add(Phase::Match, 50);
        t.add(Phase::ScriptRun, 7);
        assert_eq!(t.get(Phase::Match), Duration::from_nanos(150));
        assert_eq!(t.total(), Duration::from_nanos(157));
        let order: Vec<&str> = t.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            order,
            vec![
                "tree_build",
                "match",
                "translate",
                "scriptgen",
                "script_run"
            ]
        );
    }

    #[test]
    fn slow_record_is_one_line_with_every_phase() {
        let mut t = PhaseTotals::new();
        t.add(Phase::TreeBuild, 2_000_000);
        let line = slow_exchange_record(
            Duration::from_millis(12),
            Duration::from_millis(10),
            81,
            &t,
            None,
            None,
        );
        assert!(!line.contains('\n'));
        assert!(line.starts_with("slow_exchange total_ms=12.000"), "{line}");
        assert!(line.contains("threshold_ms=10.000"), "{line}");
        assert!(line.contains("tuples=81"), "{line}");
        assert!(line.contains("tree_build_ms=2.000"), "{line}");
        assert!(line.contains("script_run_ms=0.000"), "{line}");
        assert!(!line.contains("session="), "{line}");
        assert!(!line.contains("verb="), "{line}");
    }

    #[test]
    fn slow_record_attributes_session_and_verb_when_known() {
        let t = PhaseTotals::new();
        let line = slow_exchange_record(
            Duration::from_millis(12),
            Duration::from_millis(10),
            3,
            &t,
            Some("acme"),
            Some("PUSH"),
        );
        assert!(line.contains("tuples=3 session=acme verb=PUSH"), "{line}");
    }
}
