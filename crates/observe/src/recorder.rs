//! Flight recorder: a fixed-capacity ring buffer of completed
//! request-lifecycle spans.
//!
//! The service reactor stamps every request with a monotonically-assigned
//! id and times each lifecycle stage (`read → parse → queue_wait → exec →
//! flush`); the finished [`ReqSpan`] is committed here. The ring keeps the
//! last `capacity` spans: the write cursor is a single relaxed atomic
//! fetch-add and each slot is guarded by its own uncontended mutex, so
//! recording never blocks readers for more than one slot.
//!
//! Recording is opt-in (the service only constructs a recorder when
//! `--trace-buffer N` is set). The [`StageClock`] helper enforces the
//! zero-overhead-by-default convention from the tracing layer: when
//! disabled it performs no clock read at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed request-lifecycle span, all stage durations in
/// nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqSpan {
    /// Monotonically-assigned request id (per server run).
    pub id: u64,
    /// Protocol the request arrived on (`text` / `binary`).
    pub proto: &'static str,
    /// Request verb (`PUSH`, `FEED`, `SQL`, …).
    pub verb: String,
    /// Session the request addressed, or `-` for session-less verbs.
    pub session: String,
    /// Socket-read time attributed to this request.
    pub read_nanos: u64,
    /// Frame/line decode time.
    pub parse_nanos: u64,
    /// Time spent queued before a worker picked the job up.
    pub queue_nanos: u64,
    /// Worker execution time (engine phases included).
    pub exec_nanos: u64,
    /// Reply serialization + first flush attempt.
    pub flush_nanos: u64,
    /// Cluster node id that handled the request; empty (and absent from
    /// the rendered line) on a single-node server.
    pub node: String,
}

impl ReqSpan {
    /// Sum of all stage durations, nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.read_nanos + self.parse_nanos + self.queue_nanos + self.exec_nanos + self.flush_nanos
    }

    /// Render the one-line structured record served by the `TRACE` verb:
    ///
    /// ```text
    /// span id=7 proto=text verb=PUSH session=acme read_us=1.250 parse_us=0.300 queue_us=12.000 exec_us=250.100 flush_us=2.000 total_us=265.650
    /// ```
    ///
    /// On a clustered server a trailing ` node=<id>` tags the handling
    /// node; the single-node format is unchanged.
    pub fn render(&self) -> String {
        let us = |n: u64| n as f64 / 1e3;
        let mut line = format!(
            "span id={} proto={} verb={} session={} read_us={:.3} parse_us={:.3} \
             queue_us={:.3} exec_us={:.3} flush_us={:.3} total_us={:.3}",
            self.id,
            self.proto,
            self.verb,
            self.session,
            us(self.read_nanos),
            us(self.parse_nanos),
            us(self.queue_nanos),
            us(self.exec_nanos),
            us(self.flush_nanos),
            us(self.total_nanos()),
        );
        if !self.node.is_empty() {
            line.push_str(" node=");
            line.push_str(&self.node);
        }
        line
    }
}

/// Fixed-capacity ring buffer of the most recent [`ReqSpan`]s.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<ReqSpan>>>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of spans currently held (saturates at capacity).
    pub fn len(&self) -> usize {
        (self.cursor.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) == 0
    }

    /// Total spans ever recorded (keeps counting past capacity).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Commit a completed span, overwriting the oldest once full.
    pub fn record(&self, span: ReqSpan) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *lock(&self.slots[i]) = Some(span);
    }

    /// The most recent `k` spans, newest first.
    pub fn recent(&self, k: usize) -> Vec<ReqSpan> {
        let end = self.cursor.load(Ordering::Relaxed);
        let held = (end as usize).min(self.slots.len()) as u64;
        let mut out = Vec::with_capacity(k.min(held as usize));
        let mut seq = end;
        while seq > end - held && out.len() < k {
            seq -= 1;
            let i = seq as usize % self.slots.len();
            if let Some(span) = lock(&self.slots[i]).clone() {
                out.push(span);
            }
        }
        out
    }

    /// The `k` slowest held spans by [`ReqSpan::total_nanos`], slowest
    /// first (ties broken by recency).
    pub fn slowest(&self, k: usize) -> Vec<ReqSpan> {
        let mut all = self.recent(self.slots.len());
        all.sort_by_key(|s| std::cmp::Reverse(s.total_nanos()));
        all.truncate(k);
        all
    }
}

/// Recover the slot even if a recording thread panicked mid-write; a span
/// is plain data, so the poisoned value is still coherent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A stage timer following the zero-overhead-by-default convention: when
/// `enabled` is false, construction performs no clock read and
/// [`stop_nanos`](Self::stop_nanos) returns 0 without reading one either.
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    started: Option<Instant>,
}

impl StageClock {
    /// Start the clock, or an inert one when `enabled` is false.
    #[inline]
    pub fn start(enabled: bool) -> Self {
        StageClock {
            started: if enabled { Some(Instant::now()) } else { None },
        }
    }

    /// An inert clock (same as `start(false)`).
    #[inline]
    pub fn off() -> Self {
        StageClock { started: None }
    }

    /// Whether a clock read happened at construction.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.started.is_some()
    }

    /// Elapsed nanoseconds, or 0 when the clock was never started.
    #[inline]
    pub fn stop_nanos(self) -> u64 {
        match self.started {
            Some(t) => t.elapsed().as_nanos() as u64,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, exec_nanos: u64) -> ReqSpan {
        ReqSpan {
            id,
            proto: "text",
            verb: "PUSH".into(),
            session: "s".into(),
            read_nanos: 10,
            parse_nanos: 20,
            queue_nanos: 30,
            exec_nanos,
            flush_nanos: 40,
            node: String::new(),
        }
    }

    #[test]
    fn render_adds_node_tag_only_when_clustered() {
        let mut s = span(7, 100);
        let line = s.render();
        assert!(line.starts_with("span id=7 proto=text verb=PUSH session=s read_us="));
        assert!(!line.contains("node="));
        s.node = "n2".into();
        assert!(s.render().ends_with(" node=n2"));
    }

    #[test]
    fn ring_keeps_the_newest_spans_after_wraparound() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        for id in 0..10 {
            rec.record(span(id, 100));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.recorded(), 10);
        // Newest first, and only the last `capacity` survive the wrap.
        let ids: Vec<u64> = rec.recent(16).iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![9, 8, 7, 6]);
        // A smaller k truncates from the newest end.
        let ids: Vec<u64> = rec.recent(2).iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![9, 8]);
    }

    #[test]
    fn recent_before_wrap_returns_only_what_was_recorded() {
        let rec = FlightRecorder::new(8);
        rec.record(span(1, 100));
        rec.record(span(2, 100));
        let ids: Vec<u64> = rec.recent(8).iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 1]);
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn slowest_orders_by_total_and_survives_wraparound() {
        let rec = FlightRecorder::new(3);
        rec.record(span(1, 9_999_999)); // will be overwritten
        rec.record(span(2, 500));
        rec.record(span(3, 9_000));
        rec.record(span(4, 2_000)); // overwrites id=1
        let ids: Vec<u64> = rec.slowest(2).iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let rec = FlightRecorder::new(0);
        assert_eq!(rec.capacity(), 1);
        rec.record(span(1, 1));
        rec.record(span(2, 1));
        let ids: Vec<u64> = rec.recent(4).iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn render_is_one_line_with_every_stage() {
        let s = span(7, 250_100);
        let line = s.render();
        assert!(!line.contains('\n'));
        assert!(
            line.starts_with("span id=7 proto=text verb=PUSH session=s"),
            "{line}"
        );
        for key in [
            "read_us=0.010",
            "parse_us=0.020",
            "queue_us=0.030",
            "exec_us=250.100",
            "flush_us=0.040",
            "total_us=250.200",
        ] {
            assert!(line.contains(key), "{key} missing from {line}");
        }
    }

    #[test]
    fn disabled_stage_clock_reads_no_clock_and_reports_zero() {
        // The service convention (PR 2): without --trace-buffer the hot
        // path must not read the clock. A disabled clock is observably
        // inert.
        let clock = StageClock::start(false);
        assert!(!clock.is_recording());
        assert_eq!(clock.stop_nanos(), 0);
        assert!(!StageClock::off().is_recording());

        let live = StageClock::start(true);
        assert!(live.is_recording());
        // Elapsed is whatever it is, but the path is exercised.
        let _ = live.stop_nanos();
    }
}
