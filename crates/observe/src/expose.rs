//! Prometheus text exposition (version 0.0.4) for a [`MetricsRegistry`].
//!
//! Counters and gauges render one sample per labeled series; histograms
//! render cumulative `_bucket{le="…"}` samples over the log2 bounds, plus
//! `_sum` (seconds) and `_count`. Families are sorted by name, series by
//! label set, so the output is stable and diffable.

use std::fmt::Write as _;

use crate::registry::{bucket_bound_seconds, Metric, MetricsRegistry, HISTOGRAM_BUCKETS};

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Render the registry in Prometheus text format.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, family) in registry.snapshot() {
        let kind = family
            .series
            .values()
            .next()
            .map(|s| match s.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            })
            .unwrap_or("untyped");
        if !family.help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
        }
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for series in family.series.values() {
            match &series.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(&series.labels, None),
                        c.get()
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(&series.labels, None),
                        g.get()
                    );
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let total = h.count();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS) {
                        cum += c;
                        // Leading empty buckets carry no information (the
                        // cumulative count is still 0); skip them to keep
                        // the exposition compact. Prometheus semantics
                        // allow any subset of buckets as long as +Inf is
                        // present.
                        if cum == 0 {
                            continue;
                        }
                        let le = bucket_bound_seconds(i);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            render_labels(&series.labels, Some(("le", &format!("{le}"))))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {total}",
                        render_labels(&series.labels, Some(("le", "+Inf")))
                    );
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(&series.labels, None),
                        h.sum().as_secs_f64()
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {total}",
                        render_labels(&series.labels, None)
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("sedex_exchange_total", "Exchanges completed.")
            .add(3);
        reg.gauge("sedex_queue_depth", "Jobs queued.").set(2);
        let h = reg.histogram_with(
            "sedex_phase_seconds",
            "Phase latency.",
            &[("phase", "match")],
        );
        h.observe(Duration::from_micros(100));
        h.observe(Duration::from_micros(200));

        let text = render_prometheus(&reg);
        assert!(
            text.contains("# TYPE sedex_exchange_total counter"),
            "{text}"
        );
        assert!(text.contains("sedex_exchange_total 3"), "{text}");
        assert!(text.contains("# TYPE sedex_queue_depth gauge"), "{text}");
        assert!(text.contains("sedex_queue_depth 2"), "{text}");
        assert!(
            text.contains("# TYPE sedex_phase_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("sedex_phase_seconds_bucket{phase=\"match\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("sedex_phase_seconds_count{phase=\"match\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("sedex_phase_seconds_sum{phase=\"match\"} 0.0003"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("sedex_lat_seconds", "h");
        h.observe_nanos(3); // bucket le=4e-9
        h.observe_nanos(4); // same bucket
        h.observe_nanos(1 << 20); // bucket le=2^20 ns
        let text = render_prometheus(&reg);
        assert!(
            text.contains("sedex_lat_seconds_bucket{le=\"0.000000004\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("sedex_lat_seconds_bucket{le=\"0.001048576\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("sedex_lat_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("sedex_l_total", "h", &[("name", "a\"b\\c")])
            .inc();
        let text = render_prometheus(&reg);
        assert!(text.contains("name=\"a\\\"b\\\\c\""), "{text}");
    }

    #[test]
    fn families_render_in_sorted_order() {
        let reg = MetricsRegistry::new();
        reg.counter("sedex_z_total", "z").inc();
        reg.counter("sedex_a_total", "a").inc();
        let text = render_prometheus(&reg);
        let a = text.find("sedex_a_total").unwrap();
        let z = text.find("sedex_z_total").unwrap();
        assert!(a < z);
    }
}
