//! [`RegistryObserver`]: the bridge from trace events to registry
//! metrics. One instance pre-registers every engine metric, so observing
//! an event on the hot path touches only pre-fetched atomic handles —
//! never the registry lock.

use std::sync::Arc;

use crate::event::{Event, Observer, Phase};
use crate::registry::{Counter, Histogram, MetricsRegistry};

/// Standard engine metric names (shared with
/// `ExchangeReport::record_into`, which must stay consistent with the
/// live-event mapping below).
pub mod names {
    /// Exchanges completed (counter).
    pub const EXCHANGE_TOTAL: &str = "sedex_exchange_total";
    /// End-to-end exchange latency (histogram).
    pub const EXCHANGE_SECONDS: &str = "sedex_exchange_seconds";
    /// Source tuples processed (counter).
    pub const TUPLES_TOTAL: &str = "sedex_tuples_processed_total";
    /// Per-phase pipeline latency (histogram, `phase` label).
    pub const PHASE_SECONDS: &str = "sedex_phase_seconds";
    /// Script-repository lookups (counter, `result` label).
    pub const REPO_LOOKUP_TOTAL: &str = "sedex_repo_lookup_total";
    /// Target-egd merges (counter).
    pub const EGD_MERGE_TOTAL: &str = "sedex_egd_merge_total";
    /// Hard egd violations (counter).
    pub const VIOLATION_TOTAL: &str = "sedex_violation_total";
    /// Rows inserted into targets (counter).
    pub const ROWS_INSERTED_TOTAL: &str = "sedex_rows_inserted_total";
    /// Exchanges that exceeded the slow threshold (counter).
    pub const SLOW_EXCHANGE_TOTAL: &str = "sedex_slow_exchange_total";
    /// Hit events dropped because the repository event buffer was at its
    /// cap (counter).
    pub const HIT_EVENTS_DROPPED_TOTAL: &str = "sedex_hit_events_dropped_total";
}

/// An [`Observer`] that folds events into a [`MetricsRegistry`].
pub struct RegistryObserver {
    phase_hist: [Arc<Histogram>; Phase::COUNT],
    lookup_hit: Arc<Counter>,
    lookup_miss: Arc<Counter>,
    egd_merges: Arc<Counter>,
    violations: Arc<Counter>,
    rows_inserted: Arc<Counter>,
    exchanges: Arc<Counter>,
    exchange_hist: Arc<Histogram>,
    tuples: Arc<Counter>,
    slow: Arc<Counter>,
    hit_events_dropped: Arc<Counter>,
}

impl RegistryObserver {
    /// Pre-register every engine metric in `registry` and return the
    /// observer holding their handles.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let phase_hist = std::array::from_fn(|i| {
            registry.histogram_with(
                names::PHASE_SECONDS,
                "Time spent per pipeline phase.",
                &[("phase", Phase::ALL[i].as_str())],
            )
        });
        RegistryObserver {
            phase_hist,
            lookup_hit: registry.counter_with(
                names::REPO_LOOKUP_TOTAL,
                "Script-repository lookups by outcome.",
                &[("result", "hit")],
            ),
            lookup_miss: registry.counter_with(
                names::REPO_LOOKUP_TOTAL,
                "Script-repository lookups by outcome.",
                &[("result", "miss")],
            ),
            egd_merges: registry.counter(
                names::EGD_MERGE_TOTAL,
                "Target-egd merges performed during script runs.",
            ),
            violations: registry.counter(
                names::VIOLATION_TOTAL,
                "Hard egd violations (statement dropped).",
            ),
            rows_inserted: registry.counter(
                names::ROWS_INSERTED_TOTAL,
                "Rows inserted into target instances.",
            ),
            exchanges: registry.counter(names::EXCHANGE_TOTAL, "Exchanges completed."),
            exchange_hist: registry
                .histogram(names::EXCHANGE_SECONDS, "End-to-end exchange latency."),
            tuples: registry.counter(names::TUPLES_TOTAL, "Source tuples processed."),
            slow: registry.counter(
                names::SLOW_EXCHANGE_TOTAL,
                "Exchanges slower than the configured threshold.",
            ),
            hit_events_dropped: registry.counter(
                names::HIT_EVENTS_DROPPED_TOTAL,
                "Hit events dropped because the repository event buffer was full.",
            ),
        }
    }

    fn phase_histogram(&self, phase: Phase) -> &Histogram {
        &self.phase_hist[Phase::ALL.iter().position(|&p| p == phase).unwrap()]
    }
}

impl Observer for RegistryObserver {
    fn event(&self, e: &Event) {
        match *e {
            Event::Phase { phase, nanos } => self.phase_histogram(phase).observe_nanos(nanos),
            Event::RepoLookup { hit, count } => {
                if hit {
                    self.lookup_hit.add(count);
                } else {
                    self.lookup_miss.add(count);
                }
            }
            Event::EgdMerge { count } => self.egd_merges.add(count),
            Event::Violation { count } => self.violations.add(count),
            Event::RowsInserted { count } => self.rows_inserted.add(count),
            Event::Exchange {
                nanos,
                tuples,
                count,
            } => {
                self.exchanges.add(count);
                self.tuples.add(tuples);
                self.exchange_hist.observe_nanos(nanos);
            }
            Event::HitEventsDropped { count } => self.hit_events_dropped.add(count),
            Event::SlowExchange { .. } => self.slow.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseTotals;

    #[test]
    fn events_map_to_the_standard_metrics() {
        let reg = MetricsRegistry::new();
        let obs = RegistryObserver::new(&reg);
        obs.event(&Event::Phase {
            phase: Phase::Match,
            nanos: 1000,
        });
        obs.event(&Event::RepoLookup {
            hit: true,
            count: 4,
        });
        obs.event(&Event::RepoLookup {
            hit: false,
            count: 1,
        });
        obs.event(&Event::EgdMerge { count: 2 });
        obs.event(&Event::Violation { count: 1 });
        obs.event(&Event::RowsInserted { count: 9 });
        obs.event(&Event::Exchange {
            nanos: 5_000_000,
            tuples: 5,
            count: 1,
        });
        obs.event(&Event::SlowExchange {
            nanos: 5_000_000,
            threshold_nanos: 1_000_000,
            phases: &PhaseTotals::new(),
        });

        assert_eq!(reg.counter_value(names::EXCHANGE_TOTAL), Some(1));
        assert_eq!(reg.counter_value(names::TUPLES_TOTAL), Some(5));
        assert_eq!(reg.counter_value(names::EGD_MERGE_TOTAL), Some(2));
        assert_eq!(reg.counter_value(names::VIOLATION_TOTAL), Some(1));
        assert_eq!(reg.counter_value(names::ROWS_INSERTED_TOTAL), Some(9));
        assert_eq!(reg.counter_value(names::SLOW_EXCHANGE_TOTAL), Some(1));
        let text = crate::expose::render_prometheus(&reg);
        assert!(
            text.contains("sedex_repo_lookup_total{result=\"hit\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("sedex_phase_seconds_count{phase=\"match\"} 1"),
            "{text}"
        );
    }
}
