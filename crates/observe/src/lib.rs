//! # sedex-observe
//!
//! Observability for the SEDEX pipeline: phase tracing, a lock-free
//! metrics registry, and Prometheus text exposition. Std-only, no
//! external dependencies, like the rest of the workspace.
//!
//! Three layers, designed so each can be used alone:
//!
//! 1. **Tracing** ([`event`]) — an [`Observer`] trait receiving structured
//!    [`Event`]s (`tree_build`, `repo_lookup{hit}`, `match`, `translate`,
//!    `scriptgen`, `script_run`, `egd_merge`, `violation`, …) plus cheap
//!    [`Span`] phase timers. With no observer attached the hooks are a
//!    `None` check: no clock reads, no allocation, no atomic writes.
//! 2. **Metrics** ([`registry`]) — a [`MetricsRegistry`] of atomic
//!    [`Counter`]s, [`Gauge`]s, and log2-bucketed latency [`Histogram`]s
//!    with p50/p90/p99 estimation. Registration locks once (cold path);
//!    the handles are lock-free on the hot path.
//! 3. **Exposition** ([`expose`]) — [`render_prometheus`] renders a
//!    registry as Prometheus text format (0.0.4), the payload of the
//!    service's `METRICS` command and the CLI's `--metrics-out` file.
//!
//! [`RegistryObserver`] bridges 1 → 2: it pre-registers the standard
//! `sedex_*` metrics and folds events into them.
//!
//! A fourth, service-facing layer ([`recorder`]) holds a fixed-capacity
//! [`FlightRecorder`] ring of request-lifecycle [`ReqSpan`]s — the
//! payload of the service's `TRACE` verb — plus the [`StageClock`] stage
//! timer, which keeps the zero-overhead-by-default convention (no clock
//! reads unless tracing is enabled).
//!
//! ```
//! use sedex_observe::{render_prometheus, MetricsRegistry, RegistryObserver};
//! use sedex_observe::{Event, Observer, Phase, Span};
//!
//! let registry = MetricsRegistry::new();
//! let obs = RegistryObserver::new(&registry);
//!
//! // A timed phase and a couple of counted events…
//! Span::start(Some(&obs), Phase::Match).finish();
//! obs.event(&Event::RepoLookup { hit: true, count: 1 });
//! obs.event(&Event::Exchange { nanos: 1_500, tuples: 1, count: 1 });
//!
//! let text = render_prometheus(&registry);
//! assert!(text.contains("sedex_exchange_total 1"));
//! assert!(text.contains("# TYPE sedex_phase_seconds histogram"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod event;
pub mod expose;
pub mod recorder;
pub mod registry;

pub use bridge::{names, RegistryObserver};
pub use event::{slow_exchange_record, Event, NoopObserver, Observer, Phase, PhaseTotals, Span};
pub use expose::render_prometheus;
pub use recorder::{FlightRecorder, ReqSpan, StageClock};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
