//! Property-based tests for tree representation: random star-schema
//! instances, null-pruning monotonicity, seen-marking soundness and shape
//! key stability.

use proptest::prelude::*;
use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema, Tuple, Value};
use sedex_treerep::{
    post_order_key, reduce_to_relation_tree, relation_tree, tuple_tree, SchemaForest, TreeConfig,
};

/// A two-level star schema: Fact(k, d1..dn → Dim_i, m) with random nulls.
fn star_instance(dims: usize, rows: usize, null_mask: &[bool]) -> Instance {
    let mut rels = Vec::new();
    let mut fact_cols = vec!["k".to_string()];
    for d in 0..dims {
        fact_cols.push(format!("d{d}"));
    }
    fact_cols.push("m".into());
    let mut fact = RelationSchema::with_any_columns("Fact", &fact_cols)
        .primary_key(&["k"])
        .unwrap();
    for d in 0..dims {
        fact = fact
            .foreign_key(&[&format!("d{d}")], format!("Dim{d}"))
            .unwrap();
    }
    rels.push(fact);
    for d in 0..dims {
        rels.push(
            RelationSchema::with_any_columns(
                format!("Dim{d}"),
                &[format!("dk{d}"), format!("dv{d}")],
            )
            .primary_key(&[&format!("dk{d}")])
            .unwrap(),
        );
    }
    let schema = Schema::from_relations(rels).unwrap();
    let mut inst = Instance::new(schema);
    for d in 0..dims {
        for r in 0..rows {
            inst.insert(
                &format!("Dim{d}"),
                Tuple::of([format!("dim{d}-{r}"), format!("val{d}-{r}")]),
                ConflictPolicy::Reject,
            )
            .unwrap();
        }
    }
    for r in 0..rows {
        let mut vals = vec![Value::Text(format!("fact{r}"))];
        for d in 0..dims {
            let null = null_mask
                .get((r * dims + d) % null_mask.len().max(1))
                .copied()
                .unwrap_or(false);
            vals.push(if null {
                Value::Null
            } else {
                Value::Text(format!("dim{d}-{}", r % rows))
            });
        }
        vals.push(Value::Text(format!("m{r}")));
        inst.insert("Fact", Tuple::new(vals), ConflictPolicy::Reject)
            .unwrap();
    }
    inst
}

proptest! {
    /// Tuple trees never contain SQL nulls when pruning is on, and never
    /// contain MORE nodes than with pruning off.
    #[test]
    fn null_pruning_monotone(
        dims in 1usize..4,
        rows in 1usize..6,
        mask in proptest::collection::vec(any::<bool>(), 1..12)
    ) {
        let inst = star_instance(dims, rows, &mask);
        let pruned_cfg = TreeConfig::default();
        let full_cfg = TreeConfig { prune_nulls: false, ..TreeConfig::default() };
        for r in 0..rows as u32 {
            let pruned = tuple_tree(&inst, "Fact", r, &pruned_cfg).unwrap();
            let full = tuple_tree(&inst, "Fact", r, &full_cfg).unwrap();
            prop_assert!(pruned.tree.len() <= full.tree.len());
            for n in pruned.nodes() {
                prop_assert!(!n.value.is_null());
            }
        }
    }

    /// Every visited reference points at a live row of the named relation.
    #[test]
    fn visited_refs_are_valid(
        dims in 1usize..4,
        rows in 1usize..6,
        mask in proptest::collection::vec(any::<bool>(), 1..12)
    ) {
        let inst = star_instance(dims, rows, &mask);
        for r in 0..rows as u32 {
            let tt = tuple_tree(&inst, "Fact", r, &TreeConfig::default()).unwrap();
            for v in &tt.visited {
                let rel = inst.relation(&v.relation).expect("relation exists");
                prop_assert!(rel.row(v.row).is_some());
            }
        }
    }

    /// Shape keys: equal for same-null-pattern rows, different when the
    /// null pattern differs (some FK present vs absent).
    #[test]
    fn shape_key_reflects_structure(dims in 1usize..3, rows in 2usize..5) {
        let all_present = star_instance(dims, rows, &[false]);
        let cfg = TreeConfig::default();
        let keys: Vec<String> = (0..rows as u32)
            .map(|r| {
                let tt = tuple_tree(&all_present, "Fact", r, &cfg).unwrap();
                post_order_key(&reduce_to_relation_tree(&tt))
            })
            .collect();
        for k in &keys {
            prop_assert_eq!(k, &keys[0]);
        }
        let some_null = star_instance(dims, rows, &[true]);
        let tt = tuple_tree(&some_null, "Fact", 0, &cfg).unwrap();
        let null_key = post_order_key(&reduce_to_relation_tree(&tt));
        prop_assert_ne!(&null_key, &keys[0]);
    }

    /// Relation-tree height bounds tuple-tree height (a tuple tree can only
    /// prune, never extend, relative to its schema tree).
    #[test]
    fn tuple_tree_height_bounded_by_relation_tree(
        dims in 1usize..4,
        rows in 1usize..5
    ) {
        let inst = star_instance(dims, rows, &[false]);
        let cfg = TreeConfig::default();
        let rt = relation_tree(inst.schema(), "Fact", &cfg).unwrap();
        for r in 0..rows as u32 {
            let tt = tuple_tree(&inst, "Fact", r, &cfg).unwrap();
            prop_assert!(tt.height() <= rt.height());
            prop_assert!(tt.tree.len() <= rt.tree.len());
        }
    }

    /// Forest processing order is a permutation of the schema's relations,
    /// in non-increasing height order.
    #[test]
    fn forest_order_sound(dims in 1usize..5) {
        let inst = star_instance(dims, 1, &[false]);
        let forest = SchemaForest::new(inst.schema(), &TreeConfig::default()).unwrap();
        let order = forest.processing_order();
        prop_assert_eq!(order.len(), inst.schema().len());
        let heights: Vec<usize> = order
            .iter()
            .map(|r| forest.tree(r).unwrap().height())
            .collect();
        prop_assert!(heights.windows(2).all(|w| w[0] >= w[1]));
        // Fact (the referencing relation) always comes first.
        prop_assert_eq!(order[0], "Fact");
    }
}
