//! Property tests for tree representation: random star-schema instances,
//! null-pruning monotonicity, seen-marking soundness and shape key
//! stability.
//!
//! Deterministic: cases are generated from seeded SplitMix64 streams, so
//! every run exercises the same (broad) input set with no external
//! property-testing dependency.

use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema, Tuple, Value};
use sedex_treerep::{
    post_order_key, reduce_to_relation_tree, relation_tree, tuple_tree, SchemaForest, TreeConfig,
};

/// SplitMix64 — tiny, seedable, good enough to diversify test inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn mask(&mut self) -> Vec<bool> {
        let n = 1 + self.below(11);
        (0..n).map(|_| self.next() & 1 == 1).collect()
    }
}

/// A two-level star schema: Fact(k, d1..dn → Dim_i, m) with random nulls.
fn star_instance(dims: usize, rows: usize, null_mask: &[bool]) -> Instance {
    let mut rels = Vec::new();
    let mut fact_cols = vec!["k".to_string()];
    for d in 0..dims {
        fact_cols.push(format!("d{d}"));
    }
    fact_cols.push("m".into());
    let mut fact = RelationSchema::with_any_columns("Fact", &fact_cols)
        .primary_key(&["k"])
        .unwrap();
    for d in 0..dims {
        fact = fact
            .foreign_key(&[&format!("d{d}")], format!("Dim{d}"))
            .unwrap();
    }
    rels.push(fact);
    for d in 0..dims {
        rels.push(
            RelationSchema::with_any_columns(
                format!("Dim{d}"),
                &[format!("dk{d}"), format!("dv{d}")],
            )
            .primary_key(&[&format!("dk{d}")])
            .unwrap(),
        );
    }
    let schema = Schema::from_relations(rels).unwrap();
    let mut inst = Instance::new(schema);
    for d in 0..dims {
        for r in 0..rows {
            inst.insert(
                &format!("Dim{d}"),
                Tuple::of([format!("dim{d}-{r}"), format!("val{d}-{r}")]),
                ConflictPolicy::Reject,
            )
            .unwrap();
        }
    }
    for r in 0..rows {
        let mut vals = vec![Value::Text(format!("fact{r}"))];
        for d in 0..dims {
            let null = null_mask
                .get((r * dims + d) % null_mask.len().max(1))
                .copied()
                .unwrap_or(false);
            vals.push(if null {
                Value::Null
            } else {
                Value::Text(format!("dim{d}-{}", r % rows))
            });
        }
        vals.push(Value::Text(format!("m{r}")));
        inst.insert("Fact", Tuple::new(vals), ConflictPolicy::Reject)
            .unwrap();
    }
    inst
}

/// Tuple trees never contain SQL nulls when pruning is on, and never
/// contain MORE nodes than with pruning off.
#[test]
fn null_pruning_monotone() {
    for seed in 0..16u64 {
        let mut rng = Rng(seed);
        let dims = 1 + rng.below(3);
        let rows = 1 + rng.below(5);
        let mask = rng.mask();
        let inst = star_instance(dims, rows, &mask);
        let pruned_cfg = TreeConfig::default();
        let full_cfg = TreeConfig {
            prune_nulls: false,
            ..TreeConfig::default()
        };
        for r in 0..rows as u32 {
            let pruned = tuple_tree(&inst, "Fact", r, &pruned_cfg).unwrap();
            let full = tuple_tree(&inst, "Fact", r, &full_cfg).unwrap();
            assert!(pruned.tree.len() <= full.tree.len(), "seed {seed}");
            for n in pruned.nodes() {
                assert!(!n.value.is_null(), "seed {seed}");
            }
        }
    }
}

/// Every visited reference points at a live row of the named relation.
#[test]
fn visited_refs_are_valid() {
    for seed in 0..16u64 {
        let mut rng = Rng(seed ^ 0xA5A5);
        let dims = 1 + rng.below(3);
        let rows = 1 + rng.below(5);
        let mask = rng.mask();
        let inst = star_instance(dims, rows, &mask);
        for r in 0..rows as u32 {
            let tt = tuple_tree(&inst, "Fact", r, &TreeConfig::default()).unwrap();
            for v in &tt.visited {
                let rel = inst.relation(&v.relation).expect("relation exists");
                assert!(rel.row(v.row).is_some(), "seed {seed}");
            }
        }
    }
}

/// Shape keys: equal for same-null-pattern rows, different when the null
/// pattern differs (some FK present vs absent).
#[test]
fn shape_key_reflects_structure() {
    for seed in 0..12u64 {
        let mut rng = Rng(seed ^ 0x5A5A);
        let dims = 1 + rng.below(2);
        let rows = 2 + rng.below(3);
        let all_present = star_instance(dims, rows, &[false]);
        let cfg = TreeConfig::default();
        let keys: Vec<String> = (0..rows as u32)
            .map(|r| {
                let tt = tuple_tree(&all_present, "Fact", r, &cfg).unwrap();
                post_order_key(&reduce_to_relation_tree(&tt))
            })
            .collect();
        for k in &keys {
            assert_eq!(k, &keys[0], "seed {seed}");
        }
        let some_null = star_instance(dims, rows, &[true]);
        let tt = tuple_tree(&some_null, "Fact", 0, &cfg).unwrap();
        let null_key = post_order_key(&reduce_to_relation_tree(&tt));
        assert_ne!(&null_key, &keys[0], "seed {seed}");
    }
}

/// Relation-tree height bounds tuple-tree height (a tuple tree can only
/// prune, never extend, relative to its schema tree).
#[test]
fn tuple_tree_height_bounded_by_relation_tree() {
    for seed in 0..16u64 {
        let mut rng = Rng(seed ^ 0xC3C3);
        let dims = 1 + rng.below(3);
        let rows = 1 + rng.below(4);
        let inst = star_instance(dims, rows, &[false]);
        let cfg = TreeConfig::default();
        let rt = relation_tree(inst.schema(), "Fact", &cfg).unwrap();
        for r in 0..rows as u32 {
            let tt = tuple_tree(&inst, "Fact", r, &cfg).unwrap();
            assert!(tt.height() <= rt.height(), "seed {seed}");
            assert!(tt.tree.len() <= rt.tree.len(), "seed {seed}");
        }
    }
}

/// Forest processing order is a permutation of the schema's relations, in
/// non-increasing height order.
#[test]
fn forest_order_sound() {
    for dims in 1usize..5 {
        let inst = star_instance(dims, 1, &[false]);
        let forest = SchemaForest::new(inst.schema(), &TreeConfig::default()).unwrap();
        let order = forest.processing_order();
        assert_eq!(order.len(), inst.schema().len());
        let heights: Vec<usize> = order
            .iter()
            .map(|r| forest.tree(r).unwrap().height())
            .collect();
        assert!(heights.windows(2).all(|w| w[0] >= w[1]));
        // Fact (the referencing relation) always comes first.
        assert_eq!(order[0], "Fact");
    }
}
