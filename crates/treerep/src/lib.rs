//! # sedex-treerep
//!
//! The tree representation of data from Section 3 of the SEDEX paper:
//!
//! * **relation trees** ([`mod@relation_tree`]) — schema-level trees rooted at a
//!   relation's primary key (or a dummy `*`), whose edges are functional
//!   dependencies: a node's children are the properties it uniquely
//!   identifies, recursively following foreign keys (Def. 1);
//! * **schema forests** ([`forest`]) — the set of all relation trees of a
//!   schema (Def. 2), with the descending-height processing order of
//!   Section 4.1;
//! * **tuple trees** ([`mod@tuple_tree`]) — data-level trees of
//!   `(property : value)` pairs built from one tuple, dropping null-valued
//!   properties ("not having a property is not a property") and following
//!   foreign keys into referenced tuples (Def. 3);
//! * **reduction** ([`reduce`]) — `RT(Tt)`, the schema-level view of a tuple
//!   tree obtained by replacing `(property : value)` with `property`;
//! * **shape keys** ([`shape`]) — the post-order string representation of
//!   `RT(Tt)` that keys the script repository (Section 4.4.2), plus the
//!   compact sequential encoding used to reuse scripts across relations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forest;
pub mod reduce;
pub mod relation_tree;
pub mod shape;
pub mod tuple_tree;

pub use forest::SchemaForest;
pub use reduce::reduce_to_relation_tree;
pub use relation_tree::{relation_tree, RelationTree, TreeConfig};
pub use shape::{post_order_key, sequential_encoding, tuple_shape_key};
pub use tuple_tree::{tuple_tree, SeenRef, TupleNode, TupleTree};

/// Label type shared by relation and tuple trees: real labels wrapped in
/// [`sedex_pqgram::PqLabel`], with the dummy used for keyless roots.
pub type SchemaLabel = sedex_pqgram::PqLabel<String>;
