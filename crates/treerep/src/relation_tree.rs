//! Relation trees (Def. 1) — the schema-level tree of a relation.
//!
//! The root is the relation's single-column primary key; when the relation
//! has no key, or a composite key, the root is a dummy `*` node. The
//! remaining properties hang below, and every property that is the start of
//! a foreign key is expanded with the referenced relation's non-key
//! properties, recursively (the walk stops when a relation/property already
//! appears on the current path, which prevents cycles while still allowing
//! the same property to appear on *different* branches — e.g. `building`
//! under both `dep` and `profdep` in the paper's running example).

use sedex_pqgram::{PqLabel, Tree};
use sedex_storage::{RelationSchema, Schema, StorageError};

use crate::SchemaLabel;

/// Knobs for tree construction, shared by relation and tuple trees.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (in nodes) a tree may reach; guards against
    /// pathological FK meshes. The paper's scenarios stay below 10.
    pub max_depth: usize,
    /// Drop null-valued properties from tuple trees (the paper's semantics;
    /// disabling this is the `prune_nulls` ablation — SEDEX then behaves
    /// like a pure schema-level mapper on ambiguous scenarios).
    pub prune_nulls: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 32,
            prune_nulls: true,
        }
    }
}

/// Per-node metadata of a relation tree, parallel to the tree's arena ids.
///
/// Script generation (Algorithm 2) needs to know, for each internal node,
/// *which target relation its children's values are inserted into* and under
/// which key column — this is the "relation in the target where its
/// properties match C(Tj)" lookup of the paper, resolved once at
/// tree-construction time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMeta {
    /// The relation whose column this node's property is (`None` for the
    /// dummy root).
    pub owner: Option<String>,
    /// The relations whose tuple this node identifies: the node's own
    /// relation for the root, plus one entry per foreign key expanded at
    /// this node. Each entry is `(relation, key column name)` — the key
    /// column this node's value fills there (empty for a dummy root of a
    /// keyless relation). A key column that itself starts a foreign key
    /// (key-to-key links, e.g. vertical partitioning) carries several
    /// entries.
    pub expands_to: Vec<(String, String)>,
}

/// A relation tree: the relation it describes plus the labeled tree and
/// per-node metadata.
#[derive(Debug, Clone)]
pub struct RelationTree {
    /// The relation this tree was built for.
    pub relation: String,
    /// The tree; labels are property names, the root may be dummy.
    pub tree: Tree<SchemaLabel>,
    /// Metadata parallel to the tree's node ids.
    pub meta: Vec<NodeMeta>,
}

impl RelationTree {
    /// Tree height in nodes (the paper's `Height(T)`).
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    /// Metadata of a node.
    pub fn node_meta(&self, id: usize) -> &NodeMeta {
        &self.meta[id]
    }
}

/// Build the relation tree of `relation` within `schema` (Def. 1).
pub fn relation_tree(
    schema: &Schema,
    relation: &str,
    config: &TreeConfig,
) -> Result<RelationTree, StorageError> {
    let rel = schema.relation_or_err(relation)?;
    let (mut tree, root_is_key) = match rel.single_column_key() {
        Some(k) => (
            Tree::new(PqLabel::Label(rel.columns[k].name.clone())),
            Some(k),
        ),
        None => (Tree::<SchemaLabel>::new(PqLabel::Dummy), None),
    };
    let root = tree.root();
    let root_key_name = root_is_key
        .map(|k| rel.columns[k].name.clone())
        .unwrap_or_default();
    let mut meta = vec![NodeMeta {
        owner: root_is_key.map(|_| rel.name.clone()),
        expands_to: vec![(rel.name.clone(), root_key_name)],
    }];
    // Path of (relation, column-name) pairs used for cycle prevention; the
    // owning relation itself is on the path, so self-references stop.
    let mut path = vec![(rel.name.clone(), String::new())];
    for (i, col) in rel.columns.iter().enumerate() {
        if root_is_key == Some(i) {
            continue;
        }
        let node = tree.add_child(root, PqLabel::Label(col.name.clone()));
        meta.push(NodeMeta {
            owner: Some(rel.name.clone()),
            expands_to: Vec::new(),
        });
        debug_assert_eq!(meta.len(), tree.len());
        expand_property(
            schema, rel, i, &mut tree, node, &mut path, config, 2, &mut meta,
        )?;
    }
    // FKs starting at the key column itself (rare) expand under the root.
    if let Some(k) = root_is_key {
        expand_property(
            schema, rel, k, &mut tree, root, &mut path, config, 1, &mut meta,
        )?;
    }
    debug_assert_eq!(meta.len(), tree.len());
    Ok(RelationTree {
        relation: relation.to_owned(),
        tree,
        meta,
    })
}

/// If column `col` of `rel` starts a foreign key, hang the referenced
/// relation's non-key properties under `node` and recurse.
#[allow(clippy::too_many_arguments)]
fn expand_property(
    schema: &Schema,
    rel: &RelationSchema,
    col: usize,
    tree: &mut Tree<SchemaLabel>,
    node: usize,
    path: &mut Vec<(String, String)>,
    config: &TreeConfig,
    depth: usize,
    meta: &mut Vec<NodeMeta>,
) -> Result<(), StorageError> {
    if depth >= config.max_depth {
        return Ok(());
    }
    // A column may start several foreign keys (multi-valued attributes,
    // Section 4.3): each contributes its own expansion.
    for fk in &rel.foreign_keys {
        if fk.columns.first() != Some(&col) {
            continue;
        }
        let target = schema.relation_or_err(&fk.ref_relation)?;
        // Cycle check: don't re-enter a relation already on this path.
        if path.iter().any(|(r, _)| r == &target.name) {
            continue;
        }
        // This node now also identifies a tuple of the referenced relation.
        let ref_key_name = fk
            .ref_columns
            .first()
            .map(|&c| target.columns[c].name.clone())
            .unwrap_or_default();
        meta[node]
            .expands_to
            .push((target.name.clone(), ref_key_name));
        path.push((target.name.clone(), rel.columns[col].name.clone()));
        for (j, tcol) in target.columns.iter().enumerate() {
            if fk.ref_columns.contains(&j) {
                continue; // the referenced key is represented by `node` itself
            }
            let child = tree.add_child(node, PqLabel::Label(tcol.name.clone()));
            meta.push(NodeMeta {
                owner: Some(target.name.clone()),
                expands_to: Vec::new(),
            });
            expand_property(
                schema,
                target,
                j,
                tree,
                child,
                path,
                config,
                depth + 1,
                meta,
            )?;
        }
        path.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::RelationSchema;

    /// The source schema of Fig. 2 / Fig. 4.
    pub(crate) fn source_schema() -> Schema {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        Schema::from_relations(vec![student, prof, dep, reg]).unwrap()
    }

    fn labels_of(t: &Tree<SchemaLabel>, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| t.label(i).to_string()).collect()
    }

    #[test]
    fn fig4_student_tree() {
        // Student: root sname; children program, dep(→building),
        // supervisor(→degree, profdep(→building)). Height 4.
        let s = source_schema();
        let rt = relation_tree(&s, "Student", &TreeConfig::default()).unwrap();
        let t = &rt.tree;
        assert_eq!(t.label(t.root()).to_string(), "sname");
        let kids = labels_of(t, t.children(t.root()));
        assert_eq!(kids, vec!["program", "dep", "supervisor"]);
        let dep = t.children(t.root())[1];
        assert_eq!(labels_of(t, t.children(dep)), vec!["building"]);
        let sup = t.children(t.root())[2];
        assert_eq!(labels_of(t, t.children(sup)), vec!["degree", "profdep"]);
        let profdep = t.children(sup)[1];
        assert_eq!(labels_of(t, t.children(profdep)), vec!["building"]);
        assert_eq!(rt.height(), 4);
    }

    #[test]
    fn fig4_prof_tree_height_three() {
        let s = source_schema();
        let rt = relation_tree(&s, "Prof", &TreeConfig::default()).unwrap();
        assert_eq!(rt.height(), 3);
        assert_eq!(rt.tree.label(rt.tree.root()).to_string(), "pname");
    }

    #[test]
    fn fig4_registration_tree_dummy_root_height_five() {
        // Registration has no PK: dummy root; sname expands through Student
        // all the way to profdep→building. Levels: * / sname / supervisor /
        // profdep / building = 5.
        let s = source_schema();
        let rt = relation_tree(&s, "Registration", &TreeConfig::default()).unwrap();
        let t = &rt.tree;
        assert_eq!(t.label(t.root()).to_string(), "*");
        let kids = labels_of(t, t.children(t.root()));
        assert_eq!(kids, vec!["sname", "course", "regdate"]);
        assert_eq!(rt.height(), 5);
        // sname's children come from Student.
        let sname = t.children(t.root())[0];
        assert_eq!(
            labels_of(t, t.children(sname)),
            vec!["program", "dep", "supervisor"]
        );
    }

    #[test]
    fn dep_tree_trivial() {
        let s = source_schema();
        let rt = relation_tree(&s, "Dep", &TreeConfig::default()).unwrap();
        assert_eq!(rt.height(), 2);
        assert_eq!(rt.tree.len(), 2); // dname root + building
    }

    #[test]
    fn composite_key_gets_dummy_root() {
        let r = RelationSchema::with_any_columns("R", &["a", "b", "c"])
            .primary_key(&["a", "b"])
            .unwrap();
        let s = Schema::from_relations(vec![r]).unwrap();
        let rt = relation_tree(&s, "R", &TreeConfig::default()).unwrap();
        assert_eq!(rt.tree.label(rt.tree.root()).to_string(), "*");
        assert_eq!(rt.tree.children(rt.tree.root()).len(), 3);
    }

    #[test]
    fn cyclic_foreign_keys_terminate() {
        // A ↔ B cycle: the expansion must not loop.
        let a = RelationSchema::with_any_columns("A", &["aid", "b_ref"])
            .primary_key(&["aid"])
            .unwrap()
            .foreign_key(&["b_ref"], "B")
            .unwrap();
        let b = RelationSchema::with_any_columns("B", &["bid", "a_ref"])
            .primary_key(&["bid"])
            .unwrap()
            .foreign_key(&["a_ref"], "A")
            .unwrap();
        let s = Schema::from_relations(vec![a, b]).unwrap();
        let rt = relation_tree(&s, "A", &TreeConfig::default()).unwrap();
        // aid → b_ref → a_ref (stops: A already on path).
        assert_eq!(rt.height(), 3);
        assert!(rt.tree.len() <= 3);
    }

    #[test]
    fn self_referencing_relation_terminates() {
        let r = RelationSchema::with_any_columns("Emp", &["id", "boss"])
            .primary_key(&["id"])
            .unwrap()
            .foreign_key(&["boss"], "Emp")
            .unwrap();
        let s = Schema::from_relations(vec![r]).unwrap();
        let rt = relation_tree(&s, "Emp", &TreeConfig::default()).unwrap();
        assert_eq!(rt.tree.len(), 2); // id root + boss (no self-expansion)
    }

    #[test]
    fn same_branch_duplicates_allowed_on_distinct_branches() {
        // `building` appears under both dep and supervisor→profdep in the
        // Student tree — duplicates on distinct branches are kept.
        let s = source_schema();
        let rt = relation_tree(&s, "Student", &TreeConfig::default()).unwrap();
        let buildings = rt
            .tree
            .preorder()
            .into_iter()
            .filter(|&i| rt.tree.label(i).to_string() == "building")
            .count();
        assert_eq!(buildings, 2);
    }

    #[test]
    fn unknown_relation_errors() {
        let s = source_schema();
        assert!(relation_tree(&s, "Nope", &TreeConfig::default()).is_err());
    }
}
