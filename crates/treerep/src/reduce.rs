//! The reduction `RT(Tt)`: tuple tree → relation tree.
//!
//! "A relation tree of a tuple tree can be considered as a schema-level
//! representation of a tuple tree … achieved through replacing
//! `(property : value)` with `property`" (Section 3). The `Match` function
//! compares `RT(Tt)` against the target's relation trees.

use sedex_pqgram::{PqLabel, Tree};

use crate::tuple_tree::{TupleNode, TupleTree};
use crate::SchemaLabel;

/// Reduce a tuple tree to its schema-level relation tree.
pub fn reduce_to_relation_tree(tt: &TupleTree) -> Tree<SchemaLabel> {
    reduce_tree(&tt.tree)
}

/// Reduce a raw tuple-node tree to schema labels.
pub fn reduce_tree(tree: &Tree<PqLabel<TupleNode>>) -> Tree<SchemaLabel> {
    tree.map_labels(|l| match l {
        PqLabel::Dummy => PqLabel::Dummy,
        PqLabel::Label(n) => PqLabel::Label(n.prop.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation_tree::TreeConfig;
    use crate::tuple_tree::tuple_tree;
    use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema};

    fn mini_instance() -> Instance {
        let a = RelationSchema::with_any_columns("A", &["id", "x", "b_ref"])
            .primary_key(&["id"])
            .unwrap()
            .foreign_key(&["b_ref"], "B")
            .unwrap();
        let b = RelationSchema::with_any_columns("B", &["bid", "y"])
            .primary_key(&["bid"])
            .unwrap();
        let schema = Schema::from_relations(vec![a, b]).unwrap();
        let mut inst = Instance::new(schema);
        inst.insert(
            "B",
            sedex_storage::tuple!["b1", "v"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst.insert(
            "A",
            sedex_storage::tuple!["a1", "xv", "b1"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst
    }

    #[test]
    fn reduction_strips_values() {
        let inst = mini_instance();
        let tt = tuple_tree(&inst, "A", 0, &TreeConfig::default()).unwrap();
        let rt = reduce_to_relation_tree(&tt);
        let labels: Vec<String> = rt
            .preorder()
            .into_iter()
            .map(|i| rt.label(i).to_string())
            .collect();
        assert_eq!(labels, vec!["id", "x", "b_ref", "y"]);
    }

    #[test]
    fn reduction_preserves_shape_and_dummies() {
        let inst = mini_instance();
        let tt = tuple_tree(&inst, "A", 0, &TreeConfig::default()).unwrap();
        let rt = reduce_to_relation_tree(&tt);
        assert_eq!(rt.len(), tt.tree.len());
        assert_eq!(rt.height(), tt.tree.height());
    }
}
