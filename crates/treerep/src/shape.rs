//! Shape keys for the script repository (Section 4.4.2).
//!
//! The script repository is "a hash table where the key is the string
//! representation of the post order traversal of the relation tree of the
//! input tuple tree". Two tuple trees with the same key have identical
//! structure and property names, so the script generated for one can be
//! replayed for the other by substituting values.
//!
//! For reuse *across* relations (same hierarchy, different property names)
//! the paper uses "the sequential representation of a tree … with the
//! minimum information needed to reconstruct the tree structure": since
//! tuple trees are general trees, the encoding records each node's child
//! count alongside the traversal.

use sedex_pqgram::{PqLabel, Tree};

use crate::tuple_tree::TupleTree;
use crate::SchemaLabel;

/// The post-order label string of a (reduced) relation tree — the primary
/// script-repository key.
///
/// For the first Student tuple of the running example this is
/// `"program building dep degree building profdep supervisor sname"`,
/// exactly as printed in Section 4.4.2. A dummy root contributes `*`.
pub fn post_order_key(tree: &Tree<SchemaLabel>) -> String {
    let order = tree.postorder();
    let mut s = String::with_capacity(order.len() * 8);
    for (i, id) in order.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&tree.label(*id).to_string());
    }
    s
}

/// The post-order shape key of a tuple tree, computed directly — equivalent
/// to `post_order_key(&reduce_to_relation_tree(tt))` without materializing
/// the reduced tree. This is the hot path of the engine: one call per
/// source tuple.
pub fn tuple_shape_key(tt: &TupleTree) -> String {
    let order = tt.tree.postorder();
    let mut s = String::with_capacity(order.len() * 8);
    for (i, id) in order.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        match tt.tree.label(*id) {
            PqLabel::Dummy => s.push('*'),
            PqLabel::Label(n) => s.push_str(&n.prop),
        }
    }
    s
}

/// Structure-only sequential encoding: post-order child counts, no labels.
/// Keys the cross-relation script cache — two trees with the same encoding
/// are isomorphic as ordered trees, so a script's hierarchy can be rewritten
/// with new property names and values (Section 4.4.2, "Reusing Scripts").
pub fn sequential_encoding(tree: &Tree<SchemaLabel>) -> String {
    let order = tree.postorder();
    let mut s = String::with_capacity(order.len() * 3);
    for (i, id) in order.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&tree.children(*id).len().to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::reduce_to_relation_tree;
    use crate::relation_tree::TreeConfig;
    use crate::tuple_tree::tuple_tree;
    use sedex_pqgram::PqLabel;
    use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema};

    fn university() -> Instance {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let schema = Schema::from_relations(vec![student, prof, dep]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)
            .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
            p,
        )
        .unwrap();
        inst
    }

    #[test]
    fn paper_post_order_key_for_first_student() {
        // Section 4.4.2: "program building dep degree building profdep
        // supervisor sname".
        let inst = university();
        let tt = tuple_tree(&inst, "Student", 0, &TreeConfig::default()).unwrap();
        let rt = reduce_to_relation_tree(&tt);
        assert_eq!(
            post_order_key(&rt),
            "program building dep degree building profdep supervisor sname"
        );
        // The direct tuple-tree key agrees with the reduce-then-key path.
        assert_eq!(tuple_shape_key(&tt), post_order_key(&rt));
    }

    #[test]
    fn same_shape_same_key_different_values() {
        let mut inst = university();
        inst.insert(
            "Dep",
            sedex_storage::tuple!["d9", "b9"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst.insert(
            "Prof",
            sedex_storage::tuple!["prof9", "deg9", "d9"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s9", "p9", "d9", "prof9"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        let cfg = TreeConfig::default();
        let k1 = post_order_key(&reduce_to_relation_tree(
            &tuple_tree(&inst, "Student", 0, &cfg).unwrap(),
        ));
        let k2 = post_order_key(&reduce_to_relation_tree(
            &tuple_tree(&inst, "Student", 1, &cfg).unwrap(),
        ));
        assert_eq!(k1, k2);
    }

    #[test]
    fn null_pruning_changes_key() {
        let mut inst = university();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s2", "p2", "d1", sedex_storage::Value::Null],
            ConflictPolicy::Reject,
        )
        .unwrap();
        let cfg = TreeConfig::default();
        let k_full = post_order_key(&reduce_to_relation_tree(
            &tuple_tree(&inst, "Student", 0, &cfg).unwrap(),
        ));
        let k_null = post_order_key(&reduce_to_relation_tree(
            &tuple_tree(&inst, "Student", 1, &cfg).unwrap(),
        ));
        assert_ne!(k_full, k_null);
        assert_eq!(k_null, "program building dep sname");
    }

    #[test]
    fn sequential_encoding_reconstructs_structure() {
        // Two trees, same shape, different labels → same encoding; a third
        // with different shape → different encoding.
        let mut a = Tree::new(PqLabel::Label("r".to_string()));
        let x = a.add_child(0, PqLabel::Label("x".into()));
        a.add_child(0, PqLabel::Label("y".into()));
        a.add_child(x, PqLabel::Label("z".into()));

        let mut b = Tree::new(PqLabel::Label("q".to_string()));
        let m = b.add_child(0, PqLabel::Label("m".into()));
        b.add_child(0, PqLabel::Label("n".into()));
        b.add_child(m, PqLabel::Label("o".into()));

        let mut c = Tree::new(PqLabel::Label("r".to_string()));
        c.add_child(0, PqLabel::Label("x".into()));
        c.add_child(0, PqLabel::Label("y".into()));

        assert_eq!(sequential_encoding(&a), sequential_encoding(&b));
        assert_ne!(sequential_encoding(&a), sequential_encoding(&c));
    }

    #[test]
    fn dummy_root_renders_star() {
        let mut t: Tree<SchemaLabel> = Tree::new(PqLabel::Dummy);
        t.add_child(0, PqLabel::Label("a".into()));
        assert_eq!(post_order_key(&t), "a *");
    }
}
