//! Schema forests (Def. 2) and the processing order of Section 4.1.
//!
//! Tuples are processed "in descending order of relation tree heights": a
//! relation that references others has a taller tree and is processed first,
//! so that referenced tuples are reached (and marked seen) through their
//! referencing tuples instead of being materialized twice — the mechanism
//! that prevents entity fragmentation.

use std::collections::HashMap;

use sedex_storage::{Schema, StorageError};

use crate::relation_tree::{relation_tree, RelationTree, TreeConfig};

/// The forest of all relation trees of a schema.
#[derive(Debug, Clone)]
pub struct SchemaForest {
    trees: Vec<RelationTree>,
    by_name: HashMap<String, usize>,
}

impl SchemaForest {
    /// Build the forest `F(R) = { T_r | r ∈ R }`.
    pub fn new(schema: &Schema, config: &TreeConfig) -> Result<Self, StorageError> {
        let mut trees = Vec::with_capacity(schema.len());
        let mut by_name = HashMap::with_capacity(schema.len());
        for rel in schema.relations() {
            by_name.insert(rel.name.clone(), trees.len());
            trees.push(relation_tree(schema, &rel.name, config)?);
        }
        Ok(SchemaForest { trees, by_name })
    }

    /// All relation trees, in schema order.
    pub fn trees(&self) -> &[RelationTree] {
        &self.trees
    }

    /// The relation tree of a named relation.
    pub fn tree(&self, relation: &str) -> Option<&RelationTree> {
        self.by_name.get(relation).map(|&i| &self.trees[i])
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Relation names in descending order of tree height (ties broken by
    /// name for determinism) — the processing order of Section 4.1.
    pub fn processing_order(&self) -> Vec<&str> {
        let mut order: Vec<&RelationTree> = self.trees.iter().collect();
        order.sort_by(|a, b| {
            b.height()
                .cmp(&a.height())
                .then_with(|| a.relation.cmp(&b.relation))
        });
        order.into_iter().map(|t| t.relation.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::RelationSchema;

    fn source_schema() -> Schema {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        Schema::from_relations(vec![student, prof, dep, reg]).unwrap()
    }

    #[test]
    fn forest_contains_all_relations() {
        let f = SchemaForest::new(&source_schema(), &TreeConfig::default()).unwrap();
        assert_eq!(f.len(), 4);
        assert!(f.tree("Student").is_some());
        assert!(f.tree("Nope").is_none());
    }

    #[test]
    fn processing_order_is_descending_height() {
        // Heights: Registration 5, Student 4, Prof 3, Dep 2.
        let f = SchemaForest::new(&source_schema(), &TreeConfig::default()).unwrap();
        assert_eq!(
            f.processing_order(),
            vec!["Registration", "Student", "Prof", "Dep"]
        );
    }

    #[test]
    fn ties_break_by_name() {
        let a = RelationSchema::with_any_columns("Zeta", &["x"]);
        let b = RelationSchema::with_any_columns("Alpha", &["y"]);
        let s = Schema::from_relations(vec![a, b]).unwrap();
        let f = SchemaForest::new(&s, &TreeConfig::default()).unwrap();
        assert_eq!(f.processing_order(), vec!["Alpha", "Zeta"]);
    }
}
