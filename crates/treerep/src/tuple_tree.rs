//! Tuple trees (Def. 3) — the data-level tree of one tuple.
//!
//! Nodes are `(property : value)` pairs of the tuple and of every tuple it
//! (transitively) references through foreign keys. Properties whose value is
//! an SQL null are dropped: under the paper's Bunge-inspired semantics a
//! null means the entity *does not have* that property, so no node (and no
//! downstream expansion) is created — this is what lets the `Match` function
//! disambiguate generalization scenarios (Section 4.5).

use std::collections::HashSet;
use std::fmt;

use sedex_pqgram::{PqLabel, Tree};
use sedex_storage::relation::RowId;
use sedex_storage::{Instance, StorageError, Tuple, Value};

use crate::relation_tree::TreeConfig;

/// A node of a tuple tree: a `(property : value)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleNode {
    /// Property (column) name.
    pub prop: String,
    /// The property's value (never an SQL null when `prune_nulls` is on).
    pub value: Value,
    /// The relation this property belongs to — needed to resolve
    /// relation-qualified correspondences during matching and translation.
    pub relation: String,
}

impl fmt::Display for TupleNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.prop, self.value)
    }
}

/// A reference to a tuple visited while building a tuple tree — used by the
/// engine to mark tuples as *seen* so they are not re-processed when their
/// own relation's turn comes (Section 4.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeenRef {
    /// Relation of the visited tuple.
    pub relation: String,
    /// Row id of the visited tuple within that relation's instance.
    pub row: RowId,
}

/// A tuple tree plus the set of referenced tuples visited while building it.
#[derive(Debug, Clone)]
pub struct TupleTree {
    /// The relation the root tuple belongs to.
    pub relation: String,
    /// The tree; the root may be a dummy when the relation has no
    /// single-column key.
    pub tree: Tree<PqLabel<TupleNode>>,
    /// Every *referenced* tuple reached through foreign keys (the root tuple
    /// itself is not included).
    pub visited: Vec<SeenRef>,
}

impl TupleTree {
    /// Tree height in nodes.
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    /// Iterate all `(property, value)` pairs of the tree (excluding the
    /// dummy root, if any).
    pub fn nodes(&self) -> impl Iterator<Item = &TupleNode> {
        self.tree.labels().filter_map(|(_, l)| match l {
            PqLabel::Label(n) => Some(n),
            PqLabel::Dummy => None,
        })
    }
}

/// Build the tuple tree of row `row` of `relation` in `instance` (Def. 3).
pub fn tuple_tree(
    instance: &Instance,
    relation: &str,
    row: RowId,
    config: &TreeConfig,
) -> Result<TupleTree, StorageError> {
    let rel_inst = instance.relation_or_err(relation)?;
    let tuple = rel_inst
        .row(row)
        .ok_or_else(|| StorageError::UnknownRelation(format!("{relation}[row {row}]")))?;
    tuple_tree_of(instance, relation, row, tuple, config)
}

/// Build the tuple tree of an explicit tuple (which must conform to
/// `relation`'s schema). `row` is used only for cycle prevention bookkeeping.
pub fn tuple_tree_of(
    instance: &Instance,
    relation: &str,
    row: RowId,
    tuple: &Tuple,
    config: &TreeConfig,
) -> Result<TupleTree, StorageError> {
    let schema = instance.schema().relation_or_err(relation)?;
    let root_key = schema.single_column_key();
    let mut tree = match root_key {
        Some(k) => Tree::new(PqLabel::Label(TupleNode {
            prop: schema.columns[k].name.clone(),
            value: tuple.values()[k].clone(),
            relation: relation.to_owned(),
        })),
        None => Tree::new(PqLabel::Dummy),
    };
    let root = tree.root();
    let mut visited_set: HashSet<SeenRef> = HashSet::new();
    let mut visited = Vec::new();
    let mut path = vec![(relation.to_owned(), row)];

    let mut ctx = BuildCtx {
        instance,
        config,
        visited_set: &mut visited_set,
        visited: &mut visited,
    };

    for (i, col) in schema.columns.iter().enumerate() {
        if root_key == Some(i) {
            continue;
        }
        let v = &tuple.values()[i];
        if v.is_null() && config.prune_nulls {
            continue; // "not having a property is not a property"
        }
        let node = tree.add_child(
            root,
            PqLabel::Label(TupleNode {
                prop: col.name.clone(),
                value: v.clone(),
                relation: relation.to_owned(),
            }),
        );
        ctx.expand(relation, tuple, i, &mut tree, node, &mut path, 2)?;
    }
    if let Some(k) = root_key {
        ctx.expand(relation, tuple, k, &mut tree, root, &mut path, 1)?;
    }

    Ok(TupleTree {
        relation: relation.to_owned(),
        tree,
        visited,
    })
}

struct BuildCtx<'a> {
    instance: &'a Instance,
    config: &'a TreeConfig,
    visited_set: &'a mut HashSet<SeenRef>,
    visited: &'a mut Vec<SeenRef>,
}

impl BuildCtx<'_> {
    /// If column `col` of `relation` starts foreign keys, dereference them
    /// for `tuple` and hang the referenced tuples' non-key properties under
    /// `node`.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        relation: &str,
        tuple: &Tuple,
        col: usize,
        tree: &mut Tree<PqLabel<TupleNode>>,
        node: usize,
        path: &mut Vec<(String, RowId)>,
        depth: usize,
    ) -> Result<(), StorageError> {
        if depth >= self.config.max_depth {
            return Ok(());
        }
        let schema = self.instance.schema().relation_or_err(relation)?;
        for (fk_idx, fk) in schema.foreign_keys.iter().enumerate() {
            if fk.columns.first() != Some(&col) {
                continue;
            }
            let Some((ref_rel, ref_row)) = self.instance.deref_fk_row(relation, fk_idx, tuple)
            else {
                continue; // null FK ("nonexistent") or dangling reference
            };
            let ref_rel = ref_rel.to_owned();
            if path.iter().any(|(r, id)| r == &ref_rel && *id == ref_row) {
                continue; // cycle in the data graph
            }
            let seen = SeenRef {
                relation: ref_rel.clone(),
                row: ref_row,
            };
            if self.visited_set.insert(seen.clone()) {
                self.visited.push(seen);
            }
            let target_schema = self.instance.schema().relation_or_err(&ref_rel)?;
            let ref_tuple = self
                .instance
                .relation_or_err(&ref_rel)?
                .row(ref_row)
                .expect("deref_fk_row returned a valid row id")
                .clone();
            path.push((ref_rel.clone(), ref_row));
            for (j, tcol) in target_schema.columns.iter().enumerate() {
                if fk.ref_columns.contains(&j) {
                    continue; // the referenced key is `node` itself
                }
                let v = &ref_tuple.values()[j];
                if v.is_null() && self.config.prune_nulls {
                    continue;
                }
                let child = tree.add_child(
                    node,
                    PqLabel::Label(TupleNode {
                        prop: tcol.name.clone(),
                        value: v.clone(),
                        relation: ref_rel.clone(),
                    }),
                );
                self.expand(&ref_rel, &ref_tuple, j, tree, child, path, depth + 1)?;
            }
            path.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::{ConflictPolicy, RelationSchema, Schema};

    /// The source schema and instance of Figs. 2–3.
    pub(crate) fn university() -> Instance {
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        let schema = Schema::from_relations(vec![student, prof, dep, reg]).unwrap();
        let mut inst = Instance::new(schema);
        let p = ConflictPolicy::Reject;
        inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)
            .unwrap();
        inst.insert("Dep", sedex_storage::tuple!["d2", "b2"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)
            .unwrap();
        inst.insert("Prof", sedex_storage::tuple!["prof2", "deg2", "d2"], p)
            .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
            p,
        )
        .unwrap();
        inst.insert(
            "Student",
            sedex_storage::tuple!["s2", "p2", "d2", Value::Null],
            p,
        )
        .unwrap();
        inst.insert("Registration", sedex_storage::tuple!["s1", "c1", "dt1"], p)
            .unwrap();
        inst
    }

    fn node_strings(tt: &TupleTree) -> Vec<String> {
        tt.tree
            .preorder()
            .into_iter()
            .map(|i| tt.tree.label(i).to_string())
            .collect()
    }

    #[test]
    fn fig5_first_student_tuple_tree() {
        // t1 = (s1, p1, d1, prof1): full expansion through Prof and Dep.
        let inst = university();
        let tt = tuple_tree(&inst, "Student", 0, &TreeConfig::default()).unwrap();
        let nodes = node_strings(&tt);
        assert_eq!(
            nodes,
            vec![
                "sname:s1",
                "program:p1",
                "dep:d1",
                "building:b1",
                "supervisor:prof1",
                "degree:deg1",
                "profdep:d1",
                "building:b1",
            ]
        );
        assert_eq!(tt.height(), 4);
    }

    #[test]
    fn fig5_second_student_tuple_tree_prunes_null_supervisor() {
        // t2 = (s2, p2, d2, null): "since supervisor is null, the tuple tree
        // is not extended from this property".
        let inst = university();
        let tt = tuple_tree(&inst, "Student", 1, &TreeConfig::default()).unwrap();
        let nodes = node_strings(&tt);
        assert_eq!(
            nodes,
            vec!["sname:s2", "program:p2", "dep:d2", "building:b2"]
        );
        assert_eq!(tt.height(), 3);
    }

    #[test]
    fn prune_nulls_off_keeps_null_nodes() {
        let inst = university();
        let cfg = TreeConfig {
            prune_nulls: false,
            ..TreeConfig::default()
        };
        let tt = tuple_tree(&inst, "Student", 1, &cfg).unwrap();
        assert!(node_strings(&tt).contains(&"supervisor:NULL".to_string()));
    }

    #[test]
    fn registration_tuple_tree_has_dummy_root() {
        let inst = university();
        let tt = tuple_tree(&inst, "Registration", 0, &TreeConfig::default()).unwrap();
        let t = &tt.tree;
        assert_eq!(t.label(t.root()).to_string(), "*");
        // Root children: sname:s1 (expanded), course:c1, regdate:dt1.
        let kids: Vec<_> = t
            .children(t.root())
            .iter()
            .map(|&i| t.label(i).to_string())
            .collect();
        assert_eq!(kids, vec!["sname:s1", "course:c1", "regdate:dt1"]);
        assert_eq!(tt.height(), 5);
    }

    #[test]
    fn visited_marks_referenced_tuples_once() {
        // Processing Student t1 marks prof1 and d1 (d1 only once, even
        // though it is reached via both dep and profdep) — Section 4.2.
        let inst = university();
        let tt = tuple_tree(&inst, "Student", 0, &TreeConfig::default()).unwrap();
        let mut v: Vec<(String, RowId)> = tt
            .visited
            .iter()
            .map(|s| (s.relation.clone(), s.row))
            .collect();
        v.sort();
        assert_eq!(v, vec![("Dep".to_string(), 0), ("Prof".to_string(), 0)]);
    }

    #[test]
    fn dangling_fk_is_a_leaf() {
        let inst = {
            let mut i = university();
            i.insert(
                "Student",
                sedex_storage::tuple!["s3", "p3", "dMISSING", Value::Null],
                ConflictPolicy::Reject,
            )
            .unwrap();
            i
        };
        let tt = tuple_tree(&inst, "Student", 2, &TreeConfig::default()).unwrap();
        let nodes = node_strings(&tt);
        assert_eq!(nodes, vec!["sname:s3", "program:p3", "dep:dMISSING"]);
        assert!(tt.visited.is_empty());
    }

    #[test]
    fn data_cycles_terminate() {
        // Emp(id, boss) with a 2-cycle: e1 ↔ e2.
        let emp = RelationSchema::with_any_columns("Emp", &["id", "boss"])
            .primary_key(&["id"])
            .unwrap()
            .foreign_key(&["boss"], "Emp")
            .unwrap();
        let schema = Schema::from_relations(vec![emp]).unwrap();
        let mut inst = Instance::new(schema);
        inst.insert(
            "Emp",
            sedex_storage::tuple!["e1", "e2"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst.insert(
            "Emp",
            sedex_storage::tuple!["e2", "e1"],
            ConflictPolicy::Reject,
        )
        .unwrap();
        let tt = tuple_tree(&inst, "Emp", 0, &TreeConfig::default()).unwrap();
        // id:e1 → boss:e2 → boss:e1 (stops: e1 on path).
        assert!(tt.tree.len() <= 4);
        assert!(tt.height() >= 2);
    }

    #[test]
    fn nodes_iterator_skips_dummy_root() {
        let inst = university();
        let tt = tuple_tree(&inst, "Registration", 0, &TreeConfig::default()).unwrap();
        assert_eq!(tt.nodes().count(), tt.tree.len() - 1);
    }
}
