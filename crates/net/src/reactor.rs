//! Readiness reactor: a level-triggered poller over raw fds plus a
//! cross-thread waker.
//!
//! One thread owns the [`Poller`] and blocks in [`Poller::wait`]; any other
//! thread can interrupt that wait through a [`Waker`]. Wakeups ride on a
//! connected loopback UDP socket, which keeps the implementation pure std on
//! every unix (no eventfd/pipe bindings) at the cost of one datagram per
//! wakeup burst.

use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

use crate::sys;

/// Identifies a registered fd in events returned by [`Poller::wait`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(pub u64);

/// Token value reserved for the internal wakeup socket; user registrations
/// must not use it.
pub const WAKE_TOKEN: Token = Token(u64::MAX);

/// Maximum readiness events one [`Poller::wait`] call can report (the
/// kernel-side batch size on the epoll path). A wait returning exactly this
/// many events may have left further ready fds for the next iteration —
/// loop instrumentation should treat `events.len() == MAX_EVENTS_PER_WAIT`
/// as a saturated batch, not a complete picture of readiness.
pub const MAX_EVENTS_PER_WAIT: usize = 512;

/// Which readiness conditions a registration listens for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    /// Wake when the fd is readable (or hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but dormant (no readiness wakeups; hangup still fires).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: Token,
    /// Fd is readable (includes EOF/hangup so a read observes it).
    pub readable: bool,
    /// Fd is writable.
    pub writable: bool,
    /// Peer hung up or the fd errored.
    pub hangup: bool,
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
///
/// Clone freely; wakeups are cheap and coalesce (the poller drains all
/// pending wake datagrams per wait).
#[derive(Clone)]
pub struct Waker {
    sock: Arc<UdpSocket>,
}

impl Waker {
    /// Interrupts the poller's current (or next) wait. Best effort: errors
    /// are swallowed — a missed wakeup only delays work until the next event
    /// or timeout.
    pub fn wake(&self) {
        let _ = self.sock.send(&[1u8]);
    }
}

#[cfg(target_os = "linux")]
use std::os::fd::OwnedFd;

/// A level-triggered readiness poller (epoll on Linux, `poll(2)` elsewhere).
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: OwnedFd,
    #[cfg(not(target_os = "linux"))]
    registry: std::sync::Mutex<std::collections::HashMap<RawFd, (u64, Interest)>>,
    /// Receives wake datagrams; registered under [`WAKE_TOKEN`].
    wake_rx: UdpSocket,
    /// Template socket the [`Waker`]s share.
    wake_tx: Arc<UdpSocket>,
}

impl Poller {
    /// Creates a poller with its wakeup channel already registered.
    pub fn new() -> io::Result<Poller> {
        let wake_rx = UdpSocket::bind("127.0.0.1:0")?;
        wake_rx.set_nonblocking(true)?;
        let wake_tx = UdpSocket::bind("127.0.0.1:0")?;
        wake_tx.connect(wake_rx.local_addr()?)?;
        // Connect the receive side too, so the kernel drops datagrams from
        // any other local process that guesses the ephemeral port (spurious
        // wakeups at best, a drain_wakeups spin under a flood at worst).
        wake_rx.connect(wake_tx.local_addr()?)?;
        let poller = Poller {
            #[cfg(target_os = "linux")]
            epfd: sys::epoll_create()?,
            #[cfg(not(target_os = "linux"))]
            registry: std::sync::Mutex::new(std::collections::HashMap::new()),
            wake_rx,
            wake_tx: Arc::new(wake_tx),
        };
        poller.register(poller.wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;
        Ok(poller)
    }

    /// Returns a cloneable waker for this poller.
    pub fn waker(&self) -> Waker {
        Waker {
            sock: Arc::clone(&self.wake_tx),
        }
    }

    /// Registers `fd` for `interest` under `token`. The fd must stay open
    /// until [`deregister`](Self::deregister) (closing a registered fd is a
    /// silent leak on epoll).
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::epoll_control(
                self.epfd.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                fd,
                epoll_mask(interest),
                token.0,
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.registry
                .lock()
                .unwrap()
                .insert(fd, (token.0, interest));
            Ok(())
        }
    }

    /// Changes the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::epoll_control(
                self.epfd.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                fd,
                epoll_mask(interest),
                token.0,
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.registry
                .lock()
                .unwrap()
                .insert(fd, (token.0, interest));
            Ok(())
        }
    }

    /// Removes `fd` from the poller. Call before closing the fd.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::epoll_control(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.registry.lock().unwrap().remove(&fd);
            Ok(())
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout lapses,
    /// or a [`Waker`] fires. Readiness events are appended to `events`
    /// (cleared first); wakeups are drained internally and reported through
    /// the `bool` return instead of as events.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<bool> {
        events.clear();
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                // Round sub-millisecond timeouts up so a pending deadline
                // cannot spin the loop at zero-length waits.
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as i32
                }
            }
        };
        let mut woken = false;
        #[cfg(target_os = "linux")]
        {
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS_PER_WAIT];
            let n = sys::epoll_pwait(self.epfd.as_raw_fd(), &mut buf, timeout_ms)?;
            for ev in &buf[..n] {
                let data = ev.data;
                let bits = ev.events;
                if Token(data) == WAKE_TOKEN {
                    woken = true;
                    self.drain_wakeups();
                    continue;
                }
                let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                events.push(Event {
                    token: Token(data),
                    readable: bits & sys::EPOLLIN != 0 || hangup,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup,
                });
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            let entries: Vec<(RawFd, u64, Interest)> = {
                let reg = self.registry.lock().unwrap();
                reg.iter()
                    .map(|(&fd, &(tok, int))| (fd, tok, int))
                    .collect()
            };
            let mut fds: Vec<sys::PollFd> = entries
                .iter()
                .map(|&(fd, _, int)| sys::PollFd {
                    fd,
                    events: (if int.readable { sys::POLLIN } else { 0 })
                        | (if int.writable { sys::POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let n = sys::poll_wait(&mut fds, timeout_ms)?;
            if n > 0 {
                for (pfd, &(_, tok, _)) in fds.iter().zip(entries.iter()) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if Token(tok) == WAKE_TOKEN {
                        woken = true;
                        self.drain_wakeups();
                        continue;
                    }
                    let hangup = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.push(Event {
                        token: Token(tok),
                        readable: pfd.revents & sys::POLLIN != 0 || hangup,
                        writable: pfd.revents & sys::POLLOUT != 0,
                        hangup,
                    });
                }
            }
        }
        Ok(woken)
    }

    fn drain_wakeups(&self) {
        let mut buf = [0u8; 64];
        while let Ok(_n) = self.wake_rx.recv(&mut buf) {}
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = sys::EPOLLRDHUP;
    if interest.readable {
        mask |= sys::EPOLLIN;
    }
    if interest.writable {
        mask |= sys::EPOLLOUT;
    }
    mask
}
