//! Length-prefixed binary framing.
//!
//! Wire layout of one frame:
//!
//! ```text
//! [u32 LE body length][u8 opcode][body bytes...]
//! ```
//!
//! The 5-byte header is fixed; opcodes and body encodings belong to the
//! layer above (`sedex-service`'s wire module uses `sedex-storage::codec`).
//!
//! A frame whose declared body exceeds the decoder's cap is reported as
//! [`FrameEvent::Oversized`] and then *skipped in place*: the decoder
//! swallows exactly `declared` body bytes as they stream in and then
//! resynchronizes on the next header. Memory use is bounded by the cap —
//! an absurd length prefix never causes an allocation.

use crate::buffer::ByteQueue;

/// Fixed header size: 4-byte length + 1-byte opcode.
pub const FRAME_HEADER_BYTES: usize = 5;

/// One decoded item from the inbound byte stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameEvent {
    /// A complete frame within the size cap.
    Frame {
        /// Application opcode.
        opcode: u8,
        /// Body bytes (may be empty).
        payload: Vec<u8>,
    },
    /// A frame whose declared body length exceeded the cap. The body is
    /// being discarded; the decoder resynchronizes on the following frame.
    Oversized {
        /// Application opcode of the rejected frame.
        opcode: u8,
        /// The declared body length.
        declared: u64,
    },
}

/// Incremental frame decoder over a [`ByteQueue`].
pub struct FrameDecoder {
    max_body: usize,
    /// Body bytes of an oversized frame still to be discarded.
    skip: u64,
}

impl FrameDecoder {
    /// Creates a decoder that rejects bodies larger than `max_body` bytes.
    pub fn new(max_body: usize) -> FrameDecoder {
        FrameDecoder { max_body, skip: 0 }
    }

    /// The configured body-size cap.
    pub fn max_body(&self) -> usize {
        self.max_body
    }

    /// True while the decoder is mid-skip of an oversized frame's body.
    pub fn skipping(&self) -> bool {
        self.skip > 0
    }

    /// Extracts the next frame event, consuming bytes from `queue`.
    /// Returns `None` when more bytes are needed.
    pub fn decode(&mut self, queue: &mut ByteQueue) -> Option<FrameEvent> {
        if self.skip > 0 {
            let n = (self.skip).min(queue.len() as u64) as usize;
            queue.consume(n);
            self.skip -= n as u64;
            if self.skip > 0 {
                return None;
            }
        }
        if queue.len() < FRAME_HEADER_BYTES {
            return None;
        }
        let head = queue.as_slice();
        let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
        let opcode = head[4];
        if len > self.max_body {
            queue.consume(FRAME_HEADER_BYTES);
            self.skip = len as u64;
            // Consume whatever body bytes already arrived.
            let n = (self.skip).min(queue.len() as u64) as usize;
            queue.consume(n);
            self.skip -= n as u64;
            return Some(FrameEvent::Oversized {
                opcode,
                declared: len as u64,
            });
        }
        if queue.len() < FRAME_HEADER_BYTES + len {
            return None;
        }
        let payload = queue.as_slice()[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len].to_vec();
        queue.consume(FRAME_HEADER_BYTES + len);
        Some(FrameEvent::Frame { opcode, payload })
    }
}

/// Appends one frame (header + body) to `out`.
///
/// Panics if `payload` exceeds `u32::MAX` bytes — callers cap bodies far
/// below that.
pub fn encode_frame(out: &mut Vec<u8>, opcode: u8, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame body exceeds u32::MAX");
    out.extend_from_slice(&len.to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(payload);
}
