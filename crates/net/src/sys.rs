//! Raw OS bindings for the readiness reactor.
//!
//! The workspace is deliberately std-only and builds offline, so instead of
//! pulling in `libc`/`mio` we declare the handful of symbols we need directly:
//! std already links the platform libc, which exports them. Linux gets epoll;
//! other unixes fall back to `poll(2)`. Wakeups are done with a connected UDP
//! socket (pure std), so no `eventfd`/`pipe` bindings are needed.

use std::io;
use std::os::raw::{c_int, c_uint};

#[cfg(all(unix, not(target_os = "linux")))]
pub use fallback::*;
#[cfg(target_os = "linux")]
pub use linux::*;

/// `struct rlimit` — identical layout on Linux and the BSDs we care about.
#[repr(C)]
pub struct Rlimit {
    /// Soft limit.
    pub rlim_cur: u64,
    /// Hard limit (ceiling for the soft limit).
    pub rlim_max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(all(unix, not(target_os = "linux")))]
const RLIMIT_NOFILE: c_int = 8;

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// Returns the current `(soft, hard)` file-descriptor limit.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid, writable rlimit struct.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((lim.rlim_cur, lim.rlim_max))
}

/// Raises the soft file-descriptor limit to at least `want` descriptors,
/// raising the hard limit too when the process is privileged enough.
///
/// Returns the soft limit that is in effect afterwards; never lowers it.
/// Used by the ≥10k-connection load test so one process can hold both ends
/// of tens of thousands of sockets.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= want {
        return Ok(soft);
    }
    let new_hard = hard.max(want);
    let lim = Rlimit {
        rlim_cur: want.min(new_hard),
        rlim_max: new_hard,
    };
    // SAFETY: passing a valid rlimit struct by const pointer.
    let rc = unsafe { setrlimit(RLIMIT_NOFILE, &lim) };
    if rc != 0 {
        // Could not raise the hard limit (unprivileged): settle for the
        // largest soft limit the existing hard limit allows.
        let lim = Rlimit {
            rlim_cur: want.min(hard),
            rlim_max: hard,
        };
        // SAFETY: as above.
        let rc = unsafe { setrlimit(RLIMIT_NOFILE, &lim) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        return Ok(lim.rlim_cur);
    }
    Ok(lim.rlim_cur)
}

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    /// Kernel `struct epoll_event`. Packed on x86-64 (kernel ABI), naturally
    /// aligned elsewhere — this mirrors glibc's `__EPOLL_PACKED`.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit mask (`EPOLL*`).
        pub events: u32,
        /// Caller-chosen cookie (the reactor stores the token here).
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit mask (`EPOLL*`).
        pub events: u32,
        /// Caller-chosen cookie (the reactor stores the token here).
        pub data: u64,
    }

    /// Readable.
    pub const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition.
    pub const EPOLLERR: u32 = 0x008;
    /// Hangup.
    pub const EPOLLHUP: u32 = 0x010;
    /// Peer closed its write side.
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Add an fd to the interest list.
    pub const EPOLL_CTL_ADD: c_int = 1;
    /// Remove an fd from the interest list.
    pub const EPOLL_CTL_DEL: c_int = 2;
    /// Change an fd's event mask.
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0x80000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    /// Creates a close-on-exec epoll instance.
    pub fn epoll_create() -> io::Result<OwnedFd> {
        // SAFETY: plain syscall; on success the fd is freshly owned by us.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is valid and not owned elsewhere.
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    /// `epoll_ctl` wrapper; `events` is ignored for `EPOLL_CTL_DEL`.
    pub fn epoll_control(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` outlives the call; fds are supplied by safe owners.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocking `epoll_wait`; `timeout_ms < 0` blocks indefinitely.
    /// Returns the number of events written into `buf`.
    pub fn epoll_pwait(
        epfd: RawFd,
        buf: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        // SAFETY: `buf` is a valid writable slice of EpollEvent.
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }

    #[allow(dead_code)]
    fn _unused(_: c_uint) {}
}

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    use super::*;
    use std::os::fd::RawFd;
    use std::os::raw::{c_short, c_ulong};

    /// `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        /// The fd to poll.
        pub fd: c_int,
        /// Requested events.
        pub events: c_short,
        /// Returned events.
        pub revents: c_short,
    }

    /// Readable.
    pub const POLLIN: c_short = 0x001;
    /// Writable.
    pub const POLLOUT: c_short = 0x004;
    /// Error condition.
    pub const POLLERR: c_short = 0x008;
    /// Hangup.
    pub const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Blocking `poll(2)`; `timeout_ms < 0` blocks indefinitely.
    pub fn poll_wait(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `fds` is a valid writable slice of pollfd.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let _ = RawFd::from(0);
        Ok(n as usize)
    }

    #[allow(dead_code)]
    fn _unused(_: c_uint) {}
}
