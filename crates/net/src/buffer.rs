//! Per-connection byte buffers for nonblocking I/O.

use std::io::{self, Read, Write};

/// Result of one nonblocking read attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadOutcome {
    /// `n` fresh bytes were appended to the queue.
    Data(usize),
    /// The peer closed its write side (EOF).
    Closed,
    /// Nothing available right now; wait for the next readiness event.
    WouldBlock,
}

/// A FIFO byte buffer with an amortized-O(1) consume-from-front.
///
/// Inbound bytes accumulate here until a full line/frame can be parsed;
/// `consume` advances a head offset and the storage is compacted lazily.
#[derive(Default)]
pub struct ByteQueue {
    buf: Vec<u8>,
    head: usize,
}

/// Compact once the dead prefix exceeds this many bytes and half the buffer.
const COMPACT_THRESHOLD: usize = 32 * 1024;

impl ByteQueue {
    /// Creates an empty queue.
    pub fn new() -> ByteQueue {
        ByteQueue::default()
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// The unconsumed bytes, in arrival order.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// Appends bytes to the back of the queue.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.maybe_compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Drops the first `n` unconsumed bytes. `n` is clamped to `len()`.
    pub fn consume(&mut self, n: usize) {
        self.head = (self.head + n).min(self.buf.len());
        if self.is_empty() {
            self.buf.clear();
            self.head = 0;
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    fn maybe_compact(&mut self) {
        if self.head > COMPACT_THRESHOLD && self.head > self.buf.len() / 2 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

/// Performs one `read` into `queue` via a stack chunk.
///
/// Transient errors (`Interrupted`) are retried internally; `WouldBlock` is
/// reported as [`ReadOutcome::WouldBlock`]; any other error propagates.
pub fn read_once(
    src: &mut impl Read,
    queue: &mut ByteQueue,
    chunk: usize,
) -> io::Result<ReadOutcome> {
    let mut buf = [0u8; 64 * 1024];
    let cap = chunk.min(buf.len());
    loop {
        match src.read(&mut buf[..cap]) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(n) => {
                queue.extend_from_slice(&buf[..n]);
                return Ok(ReadOutcome::Data(n));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadOutcome::WouldBlock),
            Err(e) => return Err(e),
        }
    }
}

/// Outbound bytes awaiting a writable socket.
///
/// Responses are queued here and flushed opportunistically; when the socket
/// signals `WouldBlock` the reactor arms write interest and resumes on the
/// next writable event.
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    head: usize,
}

impl WriteBuf {
    /// Creates an empty write buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Number of bytes still to be written.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when everything queued has been flushed.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// Appends bytes to the outbound queue.
    pub fn queue(&mut self, bytes: &[u8]) {
        if self.is_empty() {
            self.buf.clear();
            self.head = 0;
        } else if self.head > COMPACT_THRESHOLD && self.head > self.buf.len() / 2 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much as the socket accepts. Returns `Ok(true)` when the
    /// buffer drained completely, `Ok(false)` on `WouldBlock`.
    pub fn flush(&mut self, dst: &mut impl Write) -> io::Result<bool> {
        while !self.is_empty() {
            match dst.write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket wrote zero bytes",
                    ))
                }
                Ok(n) => self.head += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.head = 0;
        Ok(true)
    }
}
