//! sedex-net: a tiny std-only readiness reactor and binary framing layer.
//!
//! This crate is the event-driven substrate under `sedex-service`'s server:
//!
//! - [`reactor`] — a level-triggered [`Poller`](reactor::Poller) over raw
//!   fds (epoll on Linux, `poll(2)` on other unixes) with a cross-thread
//!   [`Waker`](reactor::Waker). One reactor thread multiplexes the listener
//!   and every connection, so tens of thousands of idle connections cost
//!   zero threads and zero periodic wakeups.
//! - [`buffer`] — per-connection inbound/outbound byte buffers
//!   ([`ByteQueue`](buffer::ByteQueue), [`WriteBuf`](buffer::WriteBuf)) for
//!   nonblocking sockets.
//! - [`frame`] — `[u32 LE len][u8 opcode][body]` framing with
//!   oversized-frame skip-and-resynchronize.
//! - [`sys`] — the raw `extern "C"` bindings (the only unsafe in the
//!   workspace) plus an rlimit helper for high-connection-count tests.
//!
//! No external dependencies: std already links the platform libc, so the
//! handful of syscalls are declared directly.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod buffer;
pub mod frame;
pub mod reactor;
pub mod sys;

pub use buffer::{read_once, ByteQueue, ReadOutcome, WriteBuf};
pub use frame::{encode_frame, FrameDecoder, FrameEvent, FRAME_HEADER_BYTES};
pub use reactor::{Event, Interest, Poller, Token, Waker, MAX_EVENTS_PER_WAIT, WAKE_TOKEN};

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for chunking tests (no external RNG dep).
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn byte_queue_consume_and_compact() {
        let mut q = ByteQueue::new();
        q.extend_from_slice(b"hello world");
        assert_eq!(q.len(), 11);
        q.consume(6);
        assert_eq!(q.as_slice(), b"world");
        q.consume(5);
        assert!(q.is_empty());
        // Interleave many small extend/consume cycles to exercise compaction.
        let mut total = 0usize;
        for i in 0..20_000 {
            let chunk = [i as u8; 7];
            q.extend_from_slice(&chunk);
            q.consume(5);
            total += 2;
            assert_eq!(q.len(), total);
        }
    }

    #[test]
    fn frame_roundtrip_under_random_chunking() {
        let mut wire = Vec::new();
        let frames: Vec<(u8, Vec<u8>)> = (0..50)
            .map(|i| (i as u8, vec![i as u8; (i * 37) % 1024]))
            .collect();
        for (op, body) in &frames {
            encode_frame(&mut wire, *op, body);
        }
        let mut rng = XorShift(0x5ede_c0de);
        let mut q = ByteQueue::new();
        let mut dec = FrameDecoder::new(4096);
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < wire.len() {
            let step = 1 + (rng.next() as usize % 97);
            let end = (pos + step).min(wire.len());
            q.extend_from_slice(&wire[pos..end]);
            pos = end;
            while let Some(ev) = dec.decode(&mut q) {
                match ev {
                    FrameEvent::Frame { opcode, payload } => out.push((opcode, payload)),
                    FrameEvent::Oversized { .. } => panic!("no frame here is oversized"),
                }
            }
        }
        assert_eq!(out, frames);
        assert!(q.is_empty());
    }

    #[test]
    fn oversized_frame_skips_and_resyncs_without_allocating() {
        let mut q = ByteQueue::new();
        let mut dec = FrameDecoder::new(64);
        // A 10 MB declared body against a 64-byte cap: reported once, then
        // skipped as bytes arrive, never buffered.
        let declared: u32 = 10_000_000;
        q.extend_from_slice(&declared.to_le_bytes());
        q.extend_from_slice(&[0x42]);
        match dec.decode(&mut q) {
            Some(FrameEvent::Oversized {
                opcode,
                declared: d,
            }) => {
                assert_eq!(opcode, 0x42);
                assert_eq!(d, declared as u64);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
        assert!(dec.skipping());
        let chunk = vec![0u8; 64 * 1024];
        let mut remaining = declared as u64;
        while remaining > 0 {
            let n = (chunk.len() as u64).min(remaining) as usize;
            q.extend_from_slice(&chunk[..n]);
            remaining -= n as u64;
            let ev = dec.decode(&mut q);
            assert!(ev.is_none());
            assert!(q.len() < 128 * 1024, "skip path must not buffer the body");
        }
        assert!(!dec.skipping());
        // A well-formed frame right after decodes fine.
        let mut wire = Vec::new();
        encode_frame(&mut wire, 7, b"after");
        q.extend_from_slice(&wire);
        assert_eq!(
            dec.decode(&mut q),
            Some(FrameEvent::Frame {
                opcode: 7,
                payload: b"after".to_vec()
            })
        );

        // An absurd (near-u32::MAX) prefix is reported without allocating.
        let mut q = ByteQueue::new();
        let mut dec = FrameDecoder::new(64);
        q.extend_from_slice(&(u32::MAX - 5).to_le_bytes());
        q.extend_from_slice(&[0x99, 1, 2, 3]);
        match dec.decode(&mut q) {
            Some(FrameEvent::Oversized { opcode, declared }) => {
                assert_eq!(opcode, 0x99);
                assert_eq!(declared, (u32::MAX - 5) as u64);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
        assert!(q.is_empty(), "already-arrived body bytes are discarded");
        assert!(dec.skipping());
    }

    #[test]
    fn write_buf_partial_writes() {
        struct Dribble {
            out: Vec<u8>,
            budget: usize,
        }
        impl std::io::Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget == 0 {
                    return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(3).min(self.budget);
                self.out.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.queue(b"hello nonblocking world");
        let mut sink = Dribble {
            out: Vec::new(),
            budget: 10,
        };
        assert!(!wb.flush(&mut sink).unwrap());
        assert_eq!(sink.out, b"hello nonb");
        assert_eq!(wb.len(), 13);
        sink.budget = usize::MAX;
        assert!(wb.flush(&mut sink).unwrap());
        assert_eq!(sink.out, b"hello nonblocking world");
        assert!(wb.is_empty());
    }

    #[test]
    fn poller_reports_tcp_readiness_and_waker_interrupts() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;
        use std::time::{Duration, Instant};

        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), Token(1), Interest::READ)
            .unwrap();

        // Timeout path: nothing ready.
        let mut events = Vec::new();
        let start = Instant::now();
        let woken = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(!woken);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));

        // Accept readiness.
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let woken = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!woken);
        assert!(events.iter().any(|e| e.token == Token(1) && e.readable));
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), Token(2), Interest::READ)
            .unwrap();

        // Data readiness on the accepted socket.
        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == Token(2) && e.readable));

        // Waker interrupts an indefinite wait from another thread.
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        // Drain the pending data first so the only wake source is the waker.
        let mut q = ByteQueue::new();
        let mut s = &server_side;
        while let Ok(ReadOutcome::Data(_)) = read_once(&mut s, &mut q, 4096) {}
        let woken = poller.wait(&mut events, None).unwrap();
        assert!(woken);
        handle.join().unwrap();

        // Interest modification: dormant registration stops reporting.
        client.write_all(b"more").unwrap();
        poller
            .modify(server_side.as_raw_fd(), Token(2), Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == Token(2) && e.readable));
        poller
            .modify(server_side.as_raw_fd(), Token(2), Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == Token(2) && e.readable));

        poller.deregister(server_side.as_raw_fd()).unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn raise_nofile_limit_reports_current_or_better() {
        let (soft, _hard) = sys::nofile_limit().unwrap();
        let got = sys::raise_nofile_limit(soft).unwrap();
        assert!(got >= soft);
    }
}
