//! Column data types and coercion rules.

use std::fmt;

/// The type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit floating point.
    Real,
    /// UTF-8 text.
    Text,
    /// Untyped — matches any column. Nulls and labeled nulls type as `Any`,
    /// and columns may be declared `Any` when the workload generator does not
    /// care about types.
    Any,
}

impl DataType {
    /// Whether a value of type `other` may be stored in a column of type
    /// `self`. `Any` is compatible in both directions; `Int` widens to
    /// `Real`.
    pub fn accepts(self, other: DataType) -> bool {
        match (self, other) {
            (DataType::Any, _) | (_, DataType::Any) => true,
            (DataType::Real, DataType::Int) => true,
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Real => "real",
            DataType::Text => "text",
            DataType::Any => "any",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_accepts_everything() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Real,
            DataType::Text,
            DataType::Any,
        ] {
            assert!(DataType::Any.accepts(t));
            assert!(t.accepts(DataType::Any));
        }
    }

    #[test]
    fn int_widens_to_real() {
        assert!(DataType::Real.accepts(DataType::Int));
        assert!(!DataType::Int.accepts(DataType::Real));
    }

    #[test]
    fn exact_match_otherwise() {
        assert!(DataType::Text.accepts(DataType::Text));
        assert!(!DataType::Text.accepts(DataType::Int));
        assert!(!DataType::Bool.accepts(DataType::Text));
    }

    #[test]
    fn display() {
        assert_eq!(DataType::Int.to_string(), "int");
        assert_eq!(DataType::Any.to_string(), "any");
    }
}
