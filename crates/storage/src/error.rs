//! Error types for the storage substrate.

use std::fmt;

/// Errors raised by schema construction, instance mutation and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A relation with this name already exists in the schema.
    DuplicateRelation(String),
    /// The named relation does not exist.
    UnknownRelation(String),
    /// The named column does not exist in the given relation.
    UnknownColumn {
        /// Relation searched.
        relation: String,
        /// Missing column.
        column: String,
    },
    /// A tuple had the wrong number of values for its relation.
    ArityMismatch {
        /// Target relation.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A value's type is incompatible with its column.
    TypeMismatch {
        /// Target relation.
        relation: String,
        /// Offending column.
        column: String,
        /// Declared column type.
        expected: crate::DataType,
        /// Type of the offending value.
        got: crate::DataType,
    },
    /// A non-nullable column received a null.
    NullViolation {
        /// Target relation.
        relation: String,
        /// Offending column.
        column: String,
    },
    /// Inserting would violate a primary-key / unique constraint (an egd),
    /// and the conflict policy was [`crate::ConflictPolicy::Reject`].
    KeyViolation {
        /// Target relation.
        relation: String,
        /// Rendered key values.
        key: String,
    },
    /// An egd merge found two distinct constants for the same column of the
    /// same entity — the chase fails.
    EgdFailure {
        /// Target relation.
        relation: String,
        /// Offending column.
        column: String,
        /// First constant.
        left: String,
        /// Second conflicting constant.
        right: String,
    },
    /// A foreign key declaration referenced a missing relation or column, or
    /// had mismatched column counts.
    InvalidForeignKey(String),
    /// A primary-key or unique-constraint declaration referenced a missing
    /// column index.
    InvalidKey(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateRelation(r) => write!(f, "relation `{r}` already exists"),
            StorageError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            StorageError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch on `{relation}`: expected {expected} values, got {got}"
            ),
            StorageError::TypeMismatch {
                relation,
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on `{relation}.{column}`: expected {expected}, got {got}"
            ),
            StorageError::NullViolation { relation, column } => {
                write!(f, "null in non-nullable column `{relation}.{column}`")
            }
            StorageError::KeyViolation { relation, key } => {
                write!(
                    f,
                    "key violation on `{relation}`: key ({key}) already present"
                )
            }
            StorageError::EgdFailure {
                relation,
                column,
                left,
                right,
            } => write!(
                f,
                "egd failure on `{relation}.{column}`: constants `{left}` and `{right}` conflict"
            ),
            StorageError::InvalidForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
            StorageError::InvalidKey(msg) => write!(f, "invalid key: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::KeyViolation {
            relation: "Prof".into(),
            key: "p1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Prof") && s.contains("p1"));

        let e = StorageError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
    }
}
