//! Binary (de)serialisation for the storage model.
//!
//! The durability subsystem (`sedex-durable`) persists schemas, relations,
//! tuples and values into write-ahead-log records and snapshot files. This
//! module is the shared wire format: a tiny little-endian, length-prefixed
//! encoding with no self-description — framing, versioning and checksums are
//! the caller's job (the WAL wraps every payload in a CRC32 frame).
//!
//! Encoding invariants:
//!
//! * all integers are little-endian,
//! * strings and byte blobs are `u32` length + bytes (UTF-8 for strings),
//! * sequences are `u32` count + elements,
//! * floats are encoded by bit pattern (`f64::to_bits`), so values round-trip
//!   bit-for-bit — including the byte-identical `SQL` rendering the service's
//!   recovery test relies on.

use std::fmt;

use crate::instance::Instance;
use crate::schema::{Column, ForeignKey, RelationSchema, Schema};
use crate::tuple::Tuple;
use crate::types::DataType;
use crate::value::{OrderedF64, Value};

/// Decoding failure: truncated input, a bad tag, or an invalid structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description of what failed to decode.
    pub message: String,
}

impl CodecError {
    /// Build an error from anything displayable.
    pub fn new(message: impl Into<String>) -> Self {
        CodecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decode operations.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` (little-endian).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::new(format!(
                "truncated input: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32` (little-endian).
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64` (little-endian).
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `i64` (little-endian).
    pub fn get_i64(&mut self) -> CodecResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> CodecResult<&'a [u8]> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::new("invalid UTF-8 in string"))
    }

    /// Error unless every input byte was consumed — catches frames that are
    /// longer than their payload (a symptom of corruption the CRC missed).
    pub fn expect_end(&self) -> CodecResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

// --- value / tuple -------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_LABELED: u8 = 1;
const VAL_BOOL: u8 = 2;
const VAL_INT: u8 = 3;
const VAL_REAL: u8 = 4;
const VAL_TEXT: u8 = 5;

/// Encode one [`Value`].
pub fn encode_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(VAL_NULL),
        Value::Labeled(l) => {
            w.put_u8(VAL_LABELED);
            w.put_u64(*l);
        }
        Value::Bool(b) => {
            w.put_u8(VAL_BOOL);
            w.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            w.put_u8(VAL_INT);
            w.put_i64(*i);
        }
        Value::Real(f) => {
            w.put_u8(VAL_REAL);
            w.put_f64(f.0);
        }
        Value::Text(s) => {
            w.put_u8(VAL_TEXT);
            w.put_str(s);
        }
    }
}

/// Decode one [`Value`].
pub fn decode_value(r: &mut ByteReader<'_>) -> CodecResult<Value> {
    match r.get_u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_LABELED => Ok(Value::Labeled(r.get_u64()?)),
        VAL_BOOL => Ok(Value::Bool(r.get_u8()? != 0)),
        VAL_INT => Ok(Value::Int(r.get_i64()?)),
        VAL_REAL => Ok(Value::Real(OrderedF64(r.get_f64()?))),
        VAL_TEXT => Ok(Value::Text(r.get_str()?)),
        t => Err(CodecError::new(format!("unknown value tag {t}"))),
    }
}

/// Encode one [`Tuple`] (arity + values).
pub fn encode_tuple(w: &mut ByteWriter, t: &Tuple) {
    w.put_u32(t.values().len() as u32);
    for v in t.values() {
        encode_value(w, v);
    }
}

/// Decode one [`Tuple`].
pub fn decode_tuple(r: &mut ByteReader<'_>) -> CodecResult<Tuple> {
    let n = r.get_u32()? as usize;
    let mut vals = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        vals.push(decode_value(r)?);
    }
    Ok(Tuple::new(vals))
}

/// Encode a batch of `(relation, tuple)` rows — the payload of the service's
/// binary `PUSH_BATCH` frame.
pub fn encode_rows(w: &mut ByteWriter, rows: &[(String, Tuple)]) {
    w.put_u32(rows.len() as u32);
    for (relation, tuple) in rows {
        w.put_str(relation);
        encode_tuple(w, tuple);
    }
}

/// Decode a batch of `(relation, tuple)` rows, rejecting batches larger
/// than `max_rows` before any per-row allocation happens.
pub fn decode_rows(r: &mut ByteReader<'_>, max_rows: usize) -> CodecResult<Vec<(String, Tuple)>> {
    let n = r.get_u32()? as usize;
    if n > max_rows {
        return Err(CodecError::new(format!(
            "batch of {n} rows exceeds cap of {max_rows}"
        )));
    }
    let mut rows = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let relation = r.get_str()?;
        let tuple = decode_tuple(r)?;
        rows.push((relation, tuple));
    }
    Ok(rows)
}

// --- schema --------------------------------------------------------------

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Real => 2,
        DataType::Text => 3,
        DataType::Any => 4,
    }
}

fn dtype_from_tag(t: u8) -> CodecResult<DataType> {
    Ok(match t {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Real,
        3 => DataType::Text,
        4 => DataType::Any,
        _ => return Err(CodecError::new(format!("unknown dtype tag {t}"))),
    })
}

fn encode_indexes(w: &mut ByteWriter, idxs: &[usize]) {
    w.put_u32(idxs.len() as u32);
    for &i in idxs {
        w.put_u32(i as u32);
    }
}

fn decode_indexes(r: &mut ByteReader<'_>) -> CodecResult<Vec<usize>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(r.get_u32()? as usize);
    }
    Ok(out)
}

/// Encode one [`RelationSchema`].
pub fn encode_relation_schema(w: &mut ByteWriter, rel: &RelationSchema) {
    w.put_str(&rel.name);
    w.put_u32(rel.columns.len() as u32);
    for c in &rel.columns {
        w.put_str(&c.name);
        w.put_u8(dtype_tag(c.dtype));
        w.put_u8(u8::from(c.nullable));
    }
    encode_indexes(w, &rel.primary_key);
    w.put_u32(rel.unique.len() as u32);
    for u in &rel.unique {
        encode_indexes(w, u);
    }
    w.put_u32(rel.foreign_keys.len() as u32);
    for fk in &rel.foreign_keys {
        encode_indexes(w, &fk.columns);
        w.put_str(&fk.ref_relation);
        encode_indexes(w, &fk.ref_columns);
    }
}

/// Decode one [`RelationSchema`].
pub fn decode_relation_schema(r: &mut ByteReader<'_>) -> CodecResult<RelationSchema> {
    let name = r.get_str()?;
    let ncols = r.get_u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(4096));
    for _ in 0..ncols {
        let cname = r.get_str()?;
        let dtype = dtype_from_tag(r.get_u8()?)?;
        let nullable = r.get_u8()? != 0;
        let mut col = Column::new(cname, dtype);
        col.nullable = nullable;
        columns.push(col);
    }
    let mut rel = RelationSchema::new(name, columns);
    rel.primary_key = decode_indexes(r)?;
    let nuniq = r.get_u32()? as usize;
    for _ in 0..nuniq {
        rel.unique.push(decode_indexes(r)?);
    }
    let nfks = r.get_u32()? as usize;
    for _ in 0..nfks {
        let columns = decode_indexes(r)?;
        let ref_relation = r.get_str()?;
        let ref_columns = decode_indexes(r)?;
        rel.foreign_keys.push(ForeignKey {
            columns,
            ref_relation,
            ref_columns,
        });
    }
    Ok(rel)
}

/// Encode a whole [`Schema`] (relations in catalog order).
pub fn encode_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_u32(schema.relations().len() as u32);
    for rel in schema.relations() {
        encode_relation_schema(w, rel);
    }
}

/// Decode a [`Schema`], re-validating foreign keys.
pub fn decode_schema(r: &mut ByteReader<'_>) -> CodecResult<Schema> {
    let n = r.get_u32()? as usize;
    let mut rels = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        rels.push(decode_relation_schema(r)?);
    }
    Schema::from_relations(rels).map_err(|e| CodecError::new(format!("invalid schema: {e}")))
}

// --- instance ------------------------------------------------------------

/// Encode an [`Instance`]: its schema followed by every relation's rows in
/// catalog order.
pub fn encode_instance(w: &mut ByteWriter, inst: &Instance) {
    encode_schema(w, inst.schema());
    for (_, rel) in inst.relations() {
        w.put_u32(rel.len() as u32);
        for t in rel.iter() {
            encode_tuple(w, t);
        }
    }
}

/// Decode an [`Instance`]. Rows are installed without re-running constraint
/// checks — they were checked when first inserted; the decoder's job is a
/// faithful restore, including rows only reachable through egd merges.
pub fn decode_instance(r: &mut ByteReader<'_>) -> CodecResult<Instance> {
    let schema = decode_schema(r)?;
    let names: Vec<String> = schema.relation_names().map(str::to_owned).collect();
    let mut inst = Instance::new(schema);
    for name in names {
        let nrows = r.get_u32()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(65536));
        for _ in 0..nrows {
            rows.push(decode_tuple(r)?);
        }
        inst.relation_mut(&name)
            .map_err(|e| CodecError::new(format!("restore {name}: {e}")))?
            .set_rows(rows);
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ConflictPolicy;

    fn roundtrip_value(v: Value) {
        let mut w = ByteWriter::new();
        encode_value(&mut w, &v);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_value(&mut r).unwrap(), v);
        r.expect_end().unwrap();
    }

    #[test]
    fn values_roundtrip() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Labeled(42));
        roundtrip_value(Value::bool(true));
        roundtrip_value(Value::int(-7));
        roundtrip_value(Value::real(2.5));
        roundtrip_value(Value::real(-0.0));
        roundtrip_value(Value::text("héllo"));
        roundtrip_value(Value::text(""));
    }

    #[test]
    fn tuples_roundtrip() {
        let t = Tuple::new(vec![
            Value::text("a"),
            Value::Null,
            Value::Labeled(3),
            Value::int(9),
        ]);
        let mut w = ByteWriter::new();
        encode_tuple(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_tuple(&mut r).unwrap(), t);
    }

    fn sample_schema() -> Schema {
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let student = RelationSchema::with_any_columns("Student", &["sname", "program", "dep"])
            .primary_key(&["sname"])
            .unwrap()
            .unique_on(&["program", "dep"])
            .unwrap()
            .foreign_key(&["dep"], "Dep")
            .unwrap();
        Schema::from_relations(vec![dep, student]).unwrap()
    }

    #[test]
    fn schema_roundtrips_with_keys_and_fks() {
        let s = sample_schema();
        let mut w = ByteWriter::new();
        encode_schema(&mut w, &s);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_schema(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn instance_roundtrips_rows_in_order() {
        let mut inst = Instance::new(sample_schema());
        inst.insert("Dep", crate::tuple!["d1", "b1"], ConflictPolicy::Reject)
            .unwrap();
        inst.insert(
            "Student",
            Tuple::new(vec![Value::text("s1"), Value::Null, Value::text("d1")]),
            ConflictPolicy::Reject,
        )
        .unwrap();
        inst.insert(
            "Student",
            Tuple::new(vec![
                Value::text("s2"),
                Value::Labeled(7),
                Value::text("d1"),
            ]),
            ConflictPolicy::Reject,
        )
        .unwrap();
        let mut w = ByteWriter::new();
        encode_instance(&mut w, &inst);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_instance(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.schema(), inst.schema());
        for (name, rel) in inst.relations() {
            assert_eq!(back.relation(name).unwrap().rows(), rel.rows(), "{name}");
        }
        assert_eq!(back.stats(), inst.stats());
    }

    #[test]
    fn row_batches_roundtrip_and_cap_is_enforced() {
        let rows: Vec<(String, Tuple)> = (0..10)
            .map(|i| {
                (
                    format!("Rel{}", i % 3),
                    Tuple::new(vec![Value::int(i), Value::text("x"), Value::Null]),
                )
            })
            .collect();
        let mut w = ByteWriter::new();
        encode_rows(&mut w, &rows);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_rows(&mut r, 10).unwrap(), rows);
        r.expect_end().unwrap();

        // One over the cap fails before decoding any row.
        let mut r = ByteReader::new(&bytes);
        let err = decode_rows(&mut r, 9).unwrap_err();
        assert!(err.message.contains("exceeds cap"), "{err}");

        // An absurd declared count against a truncated body errors cleanly.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(decode_rows(&mut r, 1 << 16).is_err());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        encode_value(&mut w, &Value::text("a long enough string"));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(decode_value(&mut r).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tags_error() {
        let mut r = ByteReader::new(&[99]);
        assert!(decode_value(&mut r).is_err());
        let mut r = ByteReader::new(&[7]);
        assert!(dtype_from_tag(r.get_u8().unwrap()).is_err());
    }

    #[test]
    fn expect_end_flags_trailing_bytes() {
        let mut w = ByteWriter::new();
        encode_value(&mut w, &Value::int(1));
        w.put_u8(0xAA);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        decode_value(&mut r).unwrap();
        assert!(r.expect_end().is_err());
    }
}
