//! The atomic value model.
//!
//! SEDEX needs three kinds of atoms:
//!
//! * **constants** — ordinary typed values coming from the source instance,
//! * **SQL nulls** — which the paper interprets as *"not having a property"*
//!   (Bunge's ontology, Section 1.2); tuple trees simply drop them,
//! * **labeled nulls** — the marked/existential nulls invented by the chase in
//!   schema-mapping systems (Clio/++Spicy). Two labeled nulls with the same
//!   label denote the same unknown entity; egd application may *unify* a
//!   labeled null with a constant or with another labeled null.

use std::borrow::Cow;
use std::fmt;

use crate::types::DataType;

/// An atomic database value.
///
/// `Value` implements `Eq`/`Hash`/`Ord` so it can key hash and tree indexes.
/// Floats are compared by their bit pattern (`f64::to_bits`), which is the
/// usual trick for making them hashable; all floats produced by the workload
/// generators are well-behaved (never `NaN`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL `NULL`. Under SEDEX semantics this means *the property does not
    /// exist* for the tuple, so tuple trees prune it (Section 3, Def. 3).
    Null,
    /// A labeled (marked) null: an existential placeholder produced by the
    /// chase. Equal labels denote the same unknown value.
    Labeled(u64),
    /// Boolean constant.
    Bool(bool),
    /// 64-bit integer constant.
    Int(i64),
    /// 64-bit float constant, ordered and hashed by bit pattern.
    Real(OrderedF64),
    /// Text constant.
    Text(String),
}

/// An `f64` wrapper with total order and hashing by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Value {
    /// Build a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Build a real value.
    pub fn real(f: f64) -> Self {
        Value::Real(OrderedF64(f))
    }

    /// Build a boolean value.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Is this an SQL null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this a labeled (marked) null?
    pub fn is_labeled_null(&self) -> bool {
        matches!(self, Value::Labeled(_))
    }

    /// Is this any kind of null (SQL null or labeled null)?
    ///
    /// This is the predicate behind the *Null* bars of Figs. 9–10: the paper
    /// counts both kinds of incomplete atoms as nulls.
    pub fn is_any_null(&self) -> bool {
        matches!(self, Value::Null | Value::Labeled(_))
    }

    /// Is this a constant (neither kind of null)?
    pub fn is_constant(&self) -> bool {
        !self.is_any_null()
    }

    /// The [`DataType`] of this value; nulls type as [`DataType::Any`].
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null | Value::Labeled(_) => DataType::Any,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Real(_) => DataType::Real,
            Value::Text(_) => DataType::Text,
        }
    }

    /// Render the value the way the experiment harness and the script
    /// pretty-printer display it.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed("NULL"),
            Value::Labeled(l) => Cow::Owned(format!("N{l}")),
            Value::Bool(b) => Cow::Owned(b.to_string()),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Real(f) => Cow::Owned(f.0.to_string()),
            Value::Text(s) => Cow::Borrowed(s),
        }
    }

    /// Merge two values under egd semantics, preferring information.
    ///
    /// Returns `Some(merged)` when the two values are *compatible*:
    ///
    /// * equal values merge to themselves,
    /// * any null merges with anything, yielding the more informative side
    ///   (constant ≻ labeled null ≻ SQL null),
    /// * two distinct constants are incompatible (`None`) — in chase terms
    ///   the egd *fails*.
    pub fn unify(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (a, b) if a == b => Some(a.clone()),
            (Value::Null, b) => Some(b.clone()),
            (a, Value::Null) => Some(a.clone()),
            (Value::Labeled(_), b) if b.is_constant() => Some(b.clone()),
            (a, Value::Labeled(_)) if a.is_constant() => Some(a.clone()),
            // Two distinct labeled nulls: keep the smaller label as canonical.
            (Value::Labeled(a), Value::Labeled(b)) => Some(Value::Labeled(*a.min(b))),
            _ => None,
        }
    }

    /// How much information the value carries, for [`Value::unify`]-style
    /// preference ordering: constants (2) ≻ labeled nulls (1) ≻ nulls (0).
    pub fn information(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Labeled(_) => 1,
            _ => 2,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::real(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_classification() {
        assert!(Value::Null.is_null());
        assert!(Value::Null.is_any_null());
        assert!(!Value::Null.is_labeled_null());
        assert!(Value::Labeled(3).is_any_null());
        assert!(Value::Labeled(3).is_labeled_null());
        assert!(!Value::Labeled(3).is_null());
        assert!(Value::int(1).is_constant());
        assert!(!Value::int(1).is_any_null());
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::int(4).data_type(), DataType::Int);
        assert_eq!(Value::text("x").data_type(), DataType::Text);
        assert_eq!(Value::real(1.5).data_type(), DataType::Real);
        assert_eq!(Value::bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::Null.data_type(), DataType::Any);
        assert_eq!(Value::Labeled(0).data_type(), DataType::Any);
    }

    #[test]
    fn unify_prefers_information() {
        let c = Value::int(7);
        let l = Value::Labeled(9);
        let n = Value::Null;
        assert_eq!(c.unify(&c), Some(c.clone()));
        assert_eq!(n.unify(&c), Some(c.clone()));
        assert_eq!(c.unify(&n), Some(c.clone()));
        assert_eq!(l.unify(&c), Some(c.clone()));
        assert_eq!(c.unify(&l), Some(c.clone()));
        assert_eq!(l.unify(&n), Some(l.clone()));
        assert_eq!(
            Value::Labeled(4).unify(&Value::Labeled(2)),
            Some(Value::Labeled(2))
        );
    }

    #[test]
    fn unify_rejects_conflicting_constants() {
        assert_eq!(Value::int(1).unify(&Value::int(2)), None);
        assert_eq!(Value::text("a").unify(&Value::int(1)), None);
    }

    #[test]
    fn float_ordering_and_hash() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::real(1.0));
        assert!(s.contains(&Value::real(1.0)));
        assert!(!s.contains(&Value::real(2.0)));
        assert!(Value::real(1.0) < Value::real(2.0));
    }

    #[test]
    fn render_forms() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Labeled(12).render(), "N12");
        assert_eq!(Value::int(-3).render(), "-3");
        assert_eq!(Value::text("hi").render(), "hi");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from("a"), Value::text("a"));
        assert_eq!(Value::from(true), Value::bool(true));
        assert_eq!(Value::from(2.5), Value::real(2.5));
    }
}
