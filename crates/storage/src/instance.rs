//! Whole-database instances with constraint-checked inserts, plus cheap
//! point-in-time snapshots for MVCC readers.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::StorageError;
use crate::relation::RelationInstance;
use crate::rows::Rows;
use crate::schema::Schema;
use crate::stats::InstanceStats;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// How inserts behave when a tuple conflicts on a primary key or unique
/// constraint with an existing, *different* tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Fail the insert with [`StorageError::KeyViolation`].
    Reject,
    /// Silently keep the existing tuple (first writer wins).
    Skip,
    /// Unify the new tuple into the existing one, egd-style: constants beat
    /// labeled nulls beat SQL nulls; two distinct constants fail with
    /// [`StorageError::EgdFailure`]. This is how SEDEX applies target egds
    /// when running scripts (Section 4.4.3).
    Merge,
    /// Ignore key constraints entirely (still set semantics on identical
    /// tuples). This is the Clio / universal-solution behaviour: uncorrelated
    /// mappings may materialise the same entity several times.
    Allow,
}

/// What an insert did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new row was appended.
    Inserted(crate::relation::RowId),
    /// The identical tuple was already present.
    Duplicate(crate::relation::RowId),
    /// A key conflict was resolved by keeping the existing row unchanged.
    Skipped(crate::relation::RowId),
    /// A key conflict was resolved by merging into the existing row.
    Merged(crate::relation::RowId),
}

impl InsertOutcome {
    /// Whether the insert added a new row.
    pub fn is_inserted(&self) -> bool {
        matches!(self, InsertOutcome::Inserted(_))
    }
}

/// An instance of a whole [`Schema`]: one [`RelationInstance`] per relation.
///
/// Every mutating accessor bumps a monotonically increasing *epoch*, and
/// [`Instance::snapshot`] captures an epoch-stamped [`InstanceSnapshot`]
/// whose row sets share storage with the live instance (chunked
/// copy-on-write, see [`crate::rows::Rows`]). Two snapshots with the same
/// epoch are guaranteed identical; a snapshot never changes after capture.
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    relations: HashMap<String, RelationInstance>,
    /// Bumped on every mutating access, including ones that end up
    /// changing nothing — over-counting is safe, the epoch only promises
    /// "same epoch ⇒ same data".
    epoch: u64,
}

impl Instance {
    /// An empty instance of the given schema.
    pub fn new(schema: Schema) -> Self {
        let relations = schema
            .relations()
            .iter()
            .map(|r| (r.name.clone(), RelationInstance::new(r.clone())))
            .collect();
        Instance {
            schema: Arc::new(schema),
            relations,
            epoch: 0,
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The mutation epoch: bumped by every mutating accessor. Readers use
    /// it to tell snapshots apart without comparing data.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Capture a consistent point-in-time snapshot. Sealed row chunks are
    /// shared with the live instance (`Arc` bumps), only each relation's
    /// mutable tail (< 256 tuples) is copied — the capture cost is
    /// independent of instance size in the steady state. Index structures
    /// are *not* captured: snapshot readers render and count, they don't
    /// run constraint checks.
    pub fn snapshot(&self) -> InstanceSnapshot {
        InstanceSnapshot {
            schema: Arc::clone(&self.schema),
            epoch: self.epoch,
            relations: self
                .relations
                .iter()
                .map(|(name, rel)| (name.clone(), rel.rows_snapshot()))
                .collect(),
        }
    }

    /// The instance of the named relation.
    pub fn relation(&self, name: &str) -> Option<&RelationInstance> {
        self.relations.get(name)
    }

    /// The instance of the named relation, erroring when missing.
    pub fn relation_or_err(&self, name: &str) -> Result<&RelationInstance> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_owned()))
    }

    /// Mutable access to the named relation instance (bumps the epoch).
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut RelationInstance> {
        self.epoch += 1;
        self.relations
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_owned()))
    }

    /// Mutable access to *every* relation instance at once, keyed by name.
    /// The returned references are disjoint, so callers may hand each
    /// relation to a different thread — the engine's parallel script
    /// execution partitions inserts by target relation this way (egd/key
    /// checks stay serialized per relation). Bumps the epoch.
    pub fn relations_mut(&mut self) -> HashMap<&str, &mut RelationInstance> {
        self.epoch += 1;
        self.relations
            .iter_mut()
            .map(|(name, rel)| (name.as_str(), rel))
            .collect()
    }

    /// Iterate `(name, relation_instance)` in schema order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &RelationInstance)> {
        self.schema
            .relations()
            .iter()
            .map(move |r| (r.name.as_str(), &self.relations[&r.name]))
    }

    /// Insert a tuple into the named relation.
    pub fn insert(
        &mut self,
        relation: &str,
        tuple: Tuple,
        policy: ConflictPolicy,
    ) -> Result<InsertOutcome> {
        self.relation_mut(relation)?.insert(tuple, policy)
    }

    /// Insert many tuples with one policy; returns how many new rows landed.
    pub fn insert_all<I>(
        &mut self,
        relation: &str,
        tuples: I,
        policy: ConflictPolicy,
    ) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let rel = self.relation_mut(relation)?;
        let mut added = 0;
        for t in tuples {
            if rel.insert(t, policy)?.is_inserted() {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Dereference a foreign key of `relation` for the given tuple: find the
    /// tuple in the referenced relation whose referenced key columns equal
    /// the FK projection. Returns `None` when the FK projection contains any
    /// null (the property "does not exist") or no referenced tuple matches
    /// (dangling reference).
    pub fn deref_fk<'a>(
        &'a self,
        relation: &str,
        fk_idx: usize,
        tuple: &Tuple,
    ) -> Option<(&'a str, &'a Tuple)> {
        let rel_schema = self.schema.relation(relation)?;
        let fk = rel_schema.foreign_keys.get(fk_idx)?;
        let key_vals = tuple.project(&fk.columns);
        if key_vals.iter().any(Value::is_any_null) {
            return None;
        }
        let target = self.relations.get(&fk.ref_relation)?;
        // Fast path: the FK targets the referenced relation's primary key.
        let hit = if fk.ref_columns == target.schema().primary_key
            && !target.schema().primary_key.is_empty()
        {
            target.lookup_pk(&key_vals)
        } else {
            target
                .scan_eq(&fk.ref_columns, &key_vals)
                .into_iter()
                .next()
        };
        hit.map(|t| (fk.ref_relation.as_str(), t))
    }

    /// Like [`Instance::deref_fk`], but returns the referenced row's id so
    /// callers can mark it as *seen* (Section 4.2 of the paper).
    pub fn deref_fk_row(
        &self,
        relation: &str,
        fk_idx: usize,
        tuple: &Tuple,
    ) -> Option<(&str, crate::relation::RowId)> {
        let rel_schema = self.schema.relation(relation)?;
        let fk = rel_schema.foreign_keys.get(fk_idx)?;
        let key_vals = tuple.project(&fk.columns);
        if key_vals.iter().any(Value::is_any_null) {
            return None;
        }
        let target = self.relations.get(&fk.ref_relation)?;
        let hit = if fk.ref_columns == target.schema().primary_key
            && !target.schema().primary_key.is_empty()
        {
            target.lookup_pk_id(&key_vals)
        } else {
            target
                .scan_eq_ids(&fk.ref_columns, &key_vals)
                .into_iter()
                .next()
        };
        hit.map(|id| (fk.ref_relation.as_str(), id))
    }

    /// Total number of tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(RelationInstance::len).sum()
    }

    /// Instance statistics: the paper's quality measure (atoms, split into
    /// constants and nulls), plus tuple counts.
    pub fn stats(&self) -> InstanceStats {
        let mut s = InstanceStats::default();
        for r in self.relations.values() {
            s.tuples += r.len();
            s.constants += r.constants();
            s.nulls += r.nulls();
        }
        s
    }

    /// Apply a labeled-null substitution across all relations. Returns the
    /// total number of replaced values. Bumps the epoch.
    pub fn substitute_labeled(&mut self, subst: &HashMap<u64, Value>) -> usize {
        if subst.is_empty() {
            return 0;
        }
        self.epoch += 1;
        self.relations
            .values_mut()
            .map(|r| r.substitute_labeled(subst))
            .sum()
    }
}

/// A consistent, immutable point-in-time view of an [`Instance`]: the
/// schema, the epoch at capture, and every relation's rows (storage shared
/// with the live instance via chunked copy-on-write). This is what MVCC
/// readers render from — no locks, no indexes, no later mutation visible.
#[derive(Debug, Clone)]
pub struct InstanceSnapshot {
    schema: Arc<Schema>,
    epoch: u64,
    relations: HashMap<String, Rows>,
}

impl InstanceSnapshot {
    /// The schema the snapshot was captured under.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The live instance's [`Instance::epoch`] at capture time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The captured rows of the named relation.
    pub fn relation(&self, name: &str) -> Option<&Rows> {
        self.relations.get(name)
    }

    /// Iterate `(name, rows)` in schema order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &Rows)> {
        self.schema
            .relations()
            .iter()
            .map(move |r| (r.name.as_str(), &self.relations[&r.name]))
    }

    /// Total number of tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Rows::len).sum()
    }

    /// Instance statistics at capture time — same measure as
    /// [`Instance::stats`], computed by the reader so the capturing writer
    /// never pays the O(n) walk.
    pub fn stats(&self) -> InstanceStats {
        let mut s = InstanceStats::default();
        for rows in self.relations.values() {
            s.tuples += rows.len();
            for t in rows.iter() {
                s.constants += t.constants();
                s.nulls += t.nulls();
            }
        }
        s
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in self.relations() {
            writeln!(f, "{name} ({} tuples)", rel.len())?;
            for t in rel.iter() {
                writeln!(f, "  {t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;

    fn two_rel_schema() -> Schema {
        let a = RelationSchema::with_any_columns("A", &["id", "b_ref"])
            .primary_key(&["id"])
            .unwrap()
            .foreign_key(&["b_ref"], "B")
            .unwrap();
        let b = RelationSchema::with_any_columns("B", &["bid", "val"])
            .primary_key(&["bid"])
            .unwrap();
        Schema::from_relations(vec![a, b]).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut inst = Instance::new(two_rel_schema());
        inst.insert("B", tuple!["b1", "v"], ConflictPolicy::Reject)
            .unwrap();
        inst.insert("A", tuple!["a1", "b1"], ConflictPolicy::Reject)
            .unwrap();
        assert_eq!(inst.total_tuples(), 2);
        assert!(inst
            .relation("A")
            .unwrap()
            .lookup_pk(&[Value::text("a1")])
            .is_some());
    }

    #[test]
    fn deref_fk_follows_reference() {
        let mut inst = Instance::new(two_rel_schema());
        inst.insert("B", tuple!["b1", "v"], ConflictPolicy::Reject)
            .unwrap();
        inst.insert("A", tuple!["a1", "b1"], ConflictPolicy::Reject)
            .unwrap();
        let a_tuple = tuple!["a1", "b1"];
        let (rel, t) = inst.deref_fk("A", 0, &a_tuple).unwrap();
        assert_eq!(rel, "B");
        assert_eq!(t, &tuple!["b1", "v"]);
    }

    #[test]
    fn deref_fk_null_means_nonexistent() {
        let mut inst = Instance::new(two_rel_schema());
        inst.insert("B", tuple!["b1", "v"], ConflictPolicy::Reject)
            .unwrap();
        let a_tuple = tuple!["a2", Value::Null];
        assert!(inst.deref_fk("A", 0, &a_tuple).is_none());
    }

    #[test]
    fn deref_fk_dangling_reference() {
        let inst = Instance::new(two_rel_schema());
        let a_tuple = tuple!["a1", "missing"];
        assert!(inst.deref_fk("A", 0, &a_tuple).is_none());
    }

    #[test]
    fn stats_count_atoms() {
        let mut inst = Instance::new(two_rel_schema());
        inst.insert("B", tuple!["b1", Value::Null], ConflictPolicy::Reject)
            .unwrap();
        inst.insert("A", tuple!["a1", "b1"], ConflictPolicy::Reject)
            .unwrap();
        let s = inst.stats();
        assert_eq!(s.tuples, 2);
        assert_eq!(s.constants, 3);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.atoms(), 4);
    }

    #[test]
    fn unknown_relation_errors() {
        let mut inst = Instance::new(two_rel_schema());
        assert!(inst
            .insert("Zzz", tuple!["x"], ConflictPolicy::Allow)
            .is_err());
        assert!(inst.relation_or_err("Zzz").is_err());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut inst = Instance::new(two_rel_schema());
        inst.insert("B", tuple!["b1", "v"], ConflictPolicy::Reject)
            .unwrap();
        let snap = inst.snapshot();
        let epoch_at_capture = snap.epoch();
        inst.insert("B", tuple!["b2", "w"], ConflictPolicy::Reject)
            .unwrap();
        inst.insert("A", tuple!["a1", "b1"], ConflictPolicy::Reject)
            .unwrap();
        // The snapshot still sees exactly the pre-write state...
        assert_eq!(snap.total_tuples(), 1);
        assert_eq!(snap.relation("B").unwrap().len(), 1);
        assert_eq!(snap.relation("A").unwrap().len(), 0);
        assert_eq!(snap.stats().tuples, 1);
        // ...while the live instance moved on, bumping its epoch.
        assert_eq!(inst.total_tuples(), 3);
        assert!(inst.epoch() > epoch_at_capture);
        let snap2 = inst.snapshot();
        assert_eq!(snap2.total_tuples(), 3);
        assert_eq!(snap2.stats(), inst.stats());
    }

    #[test]
    fn snapshot_relations_iterate_in_schema_order() {
        let mut inst = Instance::new(two_rel_schema());
        inst.insert("B", tuple!["b1", "v"], ConflictPolicy::Reject)
            .unwrap();
        let snap = inst.snapshot();
        let names: Vec<&str> = snap.relations().map(|(n, _)| n).collect();
        let live: Vec<&str> = inst.relations().map(|(n, _)| n).collect();
        assert_eq!(names, live);
    }

    #[test]
    fn substitution_across_relations() {
        let mut inst = Instance::new(two_rel_schema());
        inst.insert("B", tuple!["b1", Value::Labeled(5)], ConflictPolicy::Allow)
            .unwrap();
        let mut sub = HashMap::new();
        sub.insert(5u64, Value::text("resolved"));
        assert_eq!(inst.substitute_labeled(&sub), 1);
        assert_eq!(
            inst.relation("B").unwrap().row(0).unwrap(),
            &tuple!["b1", "resolved"]
        );
    }
}
