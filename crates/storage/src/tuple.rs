//! Tuples: fixed-arity rows of [`Value`]s.

use std::fmt;

use crate::value::Value;

/// A tuple (row) of a relation instance.
///
/// A tuple of a table "can represent a particular entity, where a primary key
/// uniquely identifies a tuple among tuples of a relation" (Section 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Build a tuple from anything convertible into values.
    pub fn of<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Value at a column index.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Project the tuple onto the given column indexes (panics on
    /// out-of-range indexes — callers validate against the schema first).
    pub fn project(&self, idxs: &[usize]) -> Vec<Value> {
        idxs.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Whether any projected value is any kind of null. Key lookups treat
    /// such keys as non-matching (SQL semantics: null ≠ null).
    pub fn key_has_null(&self, idxs: &[usize]) -> bool {
        idxs.iter().any(|&i| self.values[i].is_any_null())
    }

    /// Count of constant atoms in the tuple.
    pub fn constants(&self) -> usize {
        self.values.iter().filter(|v| v.is_constant()).count()
    }

    /// Count of null atoms (SQL nulls + labeled nulls) in the tuple.
    pub fn nulls(&self) -> usize {
        self.values.iter().filter(|v| v.is_any_null()).count()
    }

    /// Consume the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Build a tuple from a list of expressions convertible into [`Value`]s.
///
/// ```
/// use sedex_storage::{tuple, Value};
/// let t = tuple!["s1", 3i64, Value::Null];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t.get(2), Some(&Value::Null));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::of(["a", "b"]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), Some(&Value::text("a")));
        assert_eq!(t.get(5), None);
    }

    #[test]
    fn projection() {
        let t = tuple!["x", 1i64, "z"];
        assert_eq!(t.project(&[2, 0]), vec![Value::text("z"), Value::text("x")]);
    }

    #[test]
    fn atom_counts() {
        let t = tuple!["x", Value::Null, Value::Labeled(1), 4i64];
        assert_eq!(t.constants(), 2);
        assert_eq!(t.nulls(), 2);
    }

    #[test]
    fn null_keys_detected() {
        let t = tuple![Value::Null, "k"];
        assert!(t.key_has_null(&[0]));
        assert!(!t.key_has_null(&[1]));
    }

    #[test]
    fn display() {
        let t = tuple!["a", 1i64];
        assert_eq!(t.to_string(), "(a, 1)");
    }
}
