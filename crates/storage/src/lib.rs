//! # sedex-storage
//!
//! In-memory nested-relational storage substrate for the SEDEX data-exchange
//! system (Sekhavat & Parsons, IEEE TKDE 2016).
//!
//! The paper runs its experiments on top of MySQL; this crate is the embedded
//! substitute. It provides everything the exchange algorithms actually touch:
//!
//! * a typed [`Value`] model with SQL-style nulls **and** *labeled nulls*
//!   (the marked nulls produced by the chase in schema-mapping systems),
//! * relation schemas with primary keys, unique constraints and foreign keys
//!   ([`schema`]),
//! * relation instances with hash indexes on keys ([`relation`]),
//! * whole-database [`instance::Instance`]s whose insert path can enforce
//!   target egds (primary-key constraints) under several conflict policies,
//! * instance statistics (constants vs. nulls — the paper's *target size in
//!   atoms* quality measure, Figs. 9–10).
//!
//! The model is deliberately simple — sets of flat records plus foreign keys —
//! which is exactly the "nested relational model … based on sets and records"
//! representation the paper adopts in Section 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod instance;
pub mod relation;
pub mod rows;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod types;
pub mod value;

pub use error::StorageError;
pub use instance::{ConflictPolicy, InsertOutcome, Instance, InstanceSnapshot};
pub use relation::RelationInstance;
pub use rows::Rows;
pub use schema::{Column, ForeignKey, RelationSchema, Schema};
pub use stats::InstanceStats;
pub use tuple::Tuple;
pub use types::DataType;
pub use value::Value;

/// Convenience result alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
