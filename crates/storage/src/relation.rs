//! Relation instances: tuple sets with hash indexes on keys.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::error::StorageError;
use crate::instance::{ConflictPolicy, InsertOutcome};
use crate::rows::Rows;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// Identifier of a row inside one relation instance.
pub type RowId = u32;

fn hash_values(vals: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    vals.hash(&mut h);
    h.finish()
}

/// An instance of one relation: a *set* of tuples (duplicates collapse, as in
/// the standard data-exchange setting) plus hash indexes on the primary key
/// and on each declared unique constraint.
///
/// Rows live in a chunked copy-on-write [`Rows`] store, so a point-in-time
/// copy of the row set ([`RelationInstance::rows_snapshot`]) is cheap —
/// sealed chunks are shared by `Arc`, only the mutable tail is copied —
/// while the append path keeps mutating uniquely-owned memory. The hash
/// indexes are never shared with snapshots: readers only need rows.
#[derive(Debug, Clone)]
pub struct RelationInstance {
    schema: RelationSchema,
    rows: Rows,
    /// Set-semantics index: tuple hash → row ids with that hash.
    row_set: HashMap<u64, Vec<RowId>>,
    /// Primary-key index: key-projection hash → row ids (usually one).
    pk_index: HashMap<u64, Vec<RowId>>,
    /// One index per `schema.unique` constraint.
    unique_indexes: Vec<HashMap<u64, Vec<RowId>>>,
}

impl RelationInstance {
    /// An empty instance of the given relation schema.
    pub fn new(schema: RelationSchema) -> Self {
        let unique_indexes = schema.unique.iter().map(|_| HashMap::new()).collect();
        RelationInstance {
            schema,
            rows: Rows::new(),
            row_set: HashMap::new(),
            pk_index: HashMap::new(),
            unique_indexes,
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Tuple by row id.
    pub fn row(&self, id: RowId) -> Option<&Tuple> {
        self.rows.get(id as usize)
    }

    /// The chunked row store, in insertion order.
    pub fn rows(&self) -> &Rows {
        &self.rows
    }

    /// A deep copy of all tuples.
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.rows.to_vec()
    }

    /// A point-in-time copy of the row set: sealed chunks are shared, only
    /// the tail is deep-copied. Later mutations of this instance are
    /// invisible to the returned [`Rows`] — the capture primitive behind
    /// [`crate::instance::Instance::snapshot`].
    pub fn rows_snapshot(&self) -> Rows {
        self.rows.clone()
    }

    fn type_check(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        for (i, (v, col)) in tuple.values().iter().zip(&self.schema.columns).enumerate() {
            let _ = i;
            if v.is_null() && !col.nullable {
                return Err(StorageError::NullViolation {
                    relation: self.schema.name.clone(),
                    column: col.name.clone(),
                });
            }
            if !col.dtype.accepts(v.data_type()) {
                return Err(StorageError::TypeMismatch {
                    relation: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.dtype,
                    got: v.data_type(),
                });
            }
        }
        Ok(())
    }

    fn find_exact(&self, tuple: &Tuple) -> Option<RowId> {
        let h = hash_values(tuple.values());
        self.row_set
            .get(&h)?
            .iter()
            .copied()
            .find(|&id| self.rows.get(id as usize) == Some(tuple))
    }

    /// Find a row whose projection on `key_cols` equals the projection of
    /// `key_vals` (which must already be the projected values). Keys
    /// containing nulls never match.
    fn find_by_key(
        index: &HashMap<u64, Vec<RowId>>,
        rows: &Rows,
        key_cols: &[usize],
        key_vals: &[Value],
    ) -> Option<RowId> {
        if key_vals.iter().any(|v| v.is_any_null()) {
            return None;
        }
        let h = hash_values(key_vals);
        index.get(&h)?.iter().copied().find(|&id| {
            key_cols
                .iter()
                .zip(key_vals)
                .all(|(&c, v)| &rows[id as usize].values()[c] == v)
        })
    }

    /// Look up a row by its full primary-key value.
    pub fn lookup_pk(&self, key_vals: &[Value]) -> Option<&Tuple> {
        self.lookup_pk_id(key_vals)
            .map(|id| &self.rows[id as usize])
    }

    /// Like [`RelationInstance::lookup_pk`], returning the row id.
    pub fn lookup_pk_id(&self, key_vals: &[Value]) -> Option<RowId> {
        if self.schema.primary_key.is_empty() {
            return None;
        }
        Self::find_by_key(
            &self.pk_index,
            &self.rows,
            &self.schema.primary_key,
            key_vals,
        )
    }

    /// Like [`RelationInstance::scan_eq`], returning row ids.
    pub fn scan_eq_ids(&self, cols: &[usize], vals: &[Value]) -> Vec<RowId> {
        if vals.iter().any(|v| v.is_any_null()) {
            return Vec::new();
        }
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, t)| cols.iter().zip(vals).all(|(&c, v)| &t.values()[c] == v))
            .map(|(id, _)| id as RowId)
            .collect()
    }

    /// Look up rows by arbitrary columns with a linear scan. Used for
    /// foreign keys that do not target the primary key and for chase joins;
    /// generated scenarios keep these relations small.
    pub fn scan_eq(&self, cols: &[usize], vals: &[Value]) -> Vec<&Tuple> {
        if vals.iter().any(|v| v.is_any_null()) {
            return Vec::new();
        }
        self.rows
            .iter()
            .filter(|t| cols.iter().zip(vals).all(|(&c, v)| &t.values()[c] == v))
            .collect()
    }

    fn index_row(&mut self, id: RowId) {
        let t = &self.rows[id as usize];
        self.row_set
            .entry(hash_values(t.values()))
            .or_default()
            .push(id);
        if !self.schema.primary_key.is_empty() && !t.key_has_null(&self.schema.primary_key) {
            let key = t.project(&self.schema.primary_key);
            self.pk_index.entry(hash_values(&key)).or_default().push(id);
        }
        for (u, idxmap) in self.schema.unique.iter().zip(&mut self.unique_indexes) {
            if !t.key_has_null(u) {
                let key = t.project(u);
                idxmap.entry(hash_values(&key)).or_default().push(id);
            }
        }
    }

    /// Insert a tuple under the given conflict policy.
    ///
    /// * Exact duplicates always collapse (set semantics) and report
    ///   [`InsertOutcome::Duplicate`].
    /// * When the relation has a primary key (or unique constraints) and a
    ///   different tuple with the same key exists, the policy decides:
    ///   [`ConflictPolicy::Reject`] errors, [`ConflictPolicy::Skip`] drops the
    ///   new tuple, [`ConflictPolicy::Merge`] unifies the two tuples column by
    ///   column (egd semantics — constants win over nulls; two distinct
    ///   constants make the merge fail with [`StorageError::EgdFailure`]), and
    ///   [`ConflictPolicy::Allow`] keeps both tuples (no egd enforcement, the
    ///   Clio/universal-solution behaviour).
    pub fn insert(&mut self, tuple: Tuple, policy: ConflictPolicy) -> Result<InsertOutcome> {
        self.type_check(&tuple)?;
        if let Some(id) = self.find_exact(&tuple) {
            return Ok(InsertOutcome::Duplicate(id));
        }
        if policy != ConflictPolicy::Allow {
            // Gather key conflicts: PK first, then unique constraints.
            let mut conflict: Option<RowId> = None;
            if !self.schema.primary_key.is_empty() && !tuple.key_has_null(&self.schema.primary_key)
            {
                let key = tuple.project(&self.schema.primary_key);
                conflict =
                    Self::find_by_key(&self.pk_index, &self.rows, &self.schema.primary_key, &key);
            }
            if conflict.is_none() {
                for (u, idxmap) in self.schema.unique.iter().zip(&self.unique_indexes) {
                    if tuple.key_has_null(u) {
                        continue;
                    }
                    let key = tuple.project(u);
                    if let Some(id) = Self::find_by_key(idxmap, &self.rows, u, &key) {
                        conflict = Some(id);
                        break;
                    }
                }
            }
            if let Some(id) = conflict {
                return match policy {
                    ConflictPolicy::Reject => Err(StorageError::KeyViolation {
                        relation: self.schema.name.clone(),
                        key: tuple
                            .project(&self.schema.primary_key)
                            .iter()
                            .map(|v| v.render().into_owned())
                            .collect::<Vec<_>>()
                            .join(","),
                    }),
                    ConflictPolicy::Skip => Ok(InsertOutcome::Skipped(id)),
                    ConflictPolicy::Merge => self.merge_into(id, &tuple),
                    ConflictPolicy::Allow => unreachable!(),
                };
            }
        }
        let id = self.rows.len() as RowId;
        self.rows.push(tuple);
        self.index_row(id);
        Ok(InsertOutcome::Inserted(id))
    }

    /// Merge `tuple` into the existing row `id`, unifying column-wise.
    fn merge_into(&mut self, id: RowId, tuple: &Tuple) -> Result<InsertOutcome> {
        let existing = &self.rows[id as usize];
        let mut merged_vals = Vec::with_capacity(existing.arity());
        for (i, (old, new)) in existing.values().iter().zip(tuple.values()).enumerate() {
            match old.unify(new) {
                Some(v) => merged_vals.push(v),
                None => {
                    return Err(StorageError::EgdFailure {
                        relation: self.schema.name.clone(),
                        column: self.schema.columns[i].name.clone(),
                        left: old.render().into_owned(),
                        right: new.render().into_owned(),
                    })
                }
            }
        }
        let merged = Tuple::new(merged_vals);
        if merged != self.rows[id as usize] {
            self.replace_row(id, merged);
        }
        Ok(InsertOutcome::Merged(id))
    }

    /// Replace a row in place, rebuilding the indexes for that row. When a
    /// snapshot shares the row's chunk, only that one chunk is copied.
    pub fn replace_row(&mut self, id: RowId, tuple: Tuple) {
        self.rows.set(id as usize, tuple);
        self.rebuild_indexes();
    }

    /// Replace the whole row set (collapsing exact duplicates) and rebuild
    /// indexes. No constraint checking — used by egd application and core
    /// minimisation, which construct already-consistent row sets.
    pub fn set_rows(&mut self, rows: Vec<Tuple>) {
        self.rows = Rows::from_vec(rows);
        self.dedup_rows();
    }

    /// Remove the rows at the given ids (ids refer to the pre-removal
    /// numbering) and rebuild indexes. Used by core minimisation.
    pub fn remove_rows(&mut self, ids: &[RowId]) {
        if ids.is_empty() {
            return;
        }
        let mut dead = vec![false; self.rows.len()];
        for &id in ids {
            if (id as usize) < dead.len() {
                dead[id as usize] = true;
            }
        }
        let old = std::mem::take(&mut self.rows).into_vec();
        let mut keep = Vec::with_capacity(old.len() - ids.len().min(old.len()));
        for (i, t) in old.into_iter().enumerate() {
            if !dead[i] {
                keep.push(t);
            }
        }
        self.rows = Rows::from_vec(keep);
        self.rebuild_indexes();
    }

    /// Apply a labeled-null substitution to every value, then rebuild
    /// indexes and re-collapse duplicates. Returns the number of values
    /// changed. Chunks containing no substituted label are left shared
    /// with any live snapshot.
    pub fn substitute_labeled(&mut self, subst: &HashMap<u64, Value>) -> usize {
        let changed = self.rows.for_each_mut_where(
            |t| {
                t.values()
                    .iter()
                    .any(|v| matches!(v, Value::Labeled(l) if subst.contains_key(l)))
            },
            |t| {
                let mut n = 0;
                for v in t.values_mut() {
                    if let Value::Labeled(l) = v {
                        if let Some(rep) = subst.get(l) {
                            *v = rep.clone();
                            n += 1;
                        }
                    }
                }
                n
            },
        );
        if changed > 0 {
            self.dedup_rows();
        }
        changed
    }

    fn dedup_rows(&mut self) {
        let mut seen: HashMap<u64, Vec<Tuple>> = HashMap::new();
        let mut keep = Vec::with_capacity(self.rows.len());
        for t in std::mem::take(&mut self.rows).into_vec() {
            let h = hash_values(t.values());
            let bucket = seen.entry(h).or_default();
            if !bucket.iter().any(|u| u == &t) {
                bucket.push(t.clone());
                keep.push(t);
            }
        }
        self.rows = Rows::from_vec(keep);
        self.rebuild_indexes();
    }

    fn rebuild_indexes(&mut self) {
        self.row_set.clear();
        self.pk_index.clear();
        for m in &mut self.unique_indexes {
            m.clear();
        }
        for id in 0..self.rows.len() as RowId {
            self.index_row(id);
        }
    }

    /// Count of constant atoms across all tuples.
    pub fn constants(&self) -> usize {
        self.rows.iter().map(Tuple::constants).sum()
    }

    /// Count of null atoms (SQL + labeled) across all tuples.
    pub fn nulls(&self) -> usize {
        self.rows.iter().map(Tuple::nulls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn keyed_rel() -> RelationInstance {
        RelationInstance::new(
            RelationSchema::with_any_columns("R", &["id", "a", "b"])
                .primary_key(&["id"])
                .unwrap(),
        )
    }

    #[test]
    fn set_semantics_collapse_exact_duplicates() {
        let mut r = RelationInstance::new(RelationSchema::with_any_columns("R", &["a"]));
        assert!(matches!(
            r.insert(tuple!["x"], ConflictPolicy::Allow).unwrap(),
            InsertOutcome::Inserted(0)
        ));
        assert!(matches!(
            r.insert(tuple!["x"], ConflictPolicy::Allow).unwrap(),
            InsertOutcome::Duplicate(0)
        ));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reject_policy_errors_on_key_conflict() {
        let mut r = keyed_rel();
        r.insert(tuple!["k", "a", "b"], ConflictPolicy::Reject)
            .unwrap();
        let err = r
            .insert(tuple!["k", "c", "d"], ConflictPolicy::Reject)
            .unwrap_err();
        assert!(matches!(err, StorageError::KeyViolation { .. }));
    }

    #[test]
    fn skip_policy_drops_conflicting_tuple() {
        let mut r = keyed_rel();
        r.insert(tuple!["k", "a", "b"], ConflictPolicy::Skip)
            .unwrap();
        let out = r
            .insert(tuple!["k", "c", "d"], ConflictPolicy::Skip)
            .unwrap();
        assert!(matches!(out, InsertOutcome::Skipped(0)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0).unwrap(), &tuple!["k", "a", "b"]);
    }

    #[test]
    fn merge_policy_unifies_nulls_with_constants() {
        let mut r = keyed_rel();
        r.insert(tuple!["k", Value::Null, "b"], ConflictPolicy::Merge)
            .unwrap();
        let out = r
            .insert(tuple!["k", "a", Value::Labeled(7)], ConflictPolicy::Merge)
            .unwrap();
        assert!(matches!(out, InsertOutcome::Merged(0)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0).unwrap(), &tuple!["k", "a", "b"]);
    }

    #[test]
    fn merge_policy_fails_on_conflicting_constants() {
        let mut r = keyed_rel();
        r.insert(tuple!["k", "a", "b"], ConflictPolicy::Merge)
            .unwrap();
        let err = r
            .insert(tuple!["k", "DIFFERENT", "b"], ConflictPolicy::Merge)
            .unwrap_err();
        assert!(matches!(err, StorageError::EgdFailure { .. }));
    }

    #[test]
    fn allow_policy_keeps_key_conflicts() {
        let mut r = keyed_rel();
        r.insert(tuple!["k", "a", "b"], ConflictPolicy::Allow)
            .unwrap();
        r.insert(tuple!["k", "c", "d"], ConflictPolicy::Allow)
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn null_keys_do_not_conflict() {
        let mut r = keyed_rel();
        // PK column is non-nullable after primary_key(); use a keyless unique instead.
        let mut r2 = RelationInstance::new(
            RelationSchema::with_any_columns("S", &["u", "v"])
                .unique_on(&["u"])
                .unwrap(),
        );
        r2.insert(tuple![Value::Null, "a"], ConflictPolicy::Merge)
            .unwrap();
        r2.insert(tuple![Value::Null, "b"], ConflictPolicy::Merge)
            .unwrap();
        assert_eq!(r2.len(), 2);
        let _ = &mut r;
    }

    #[test]
    fn pk_lookup() {
        let mut r = keyed_rel();
        r.insert(tuple!["k1", "a", "b"], ConflictPolicy::Reject)
            .unwrap();
        r.insert(tuple!["k2", "c", "d"], ConflictPolicy::Reject)
            .unwrap();
        assert_eq!(
            r.lookup_pk(&[Value::text("k2")]).unwrap(),
            &tuple!["k2", "c", "d"]
        );
        assert!(r.lookup_pk(&[Value::text("zz")]).is_none());
        assert!(r.lookup_pk(&[Value::Null]).is_none());
    }

    #[test]
    fn scan_eq_matches() {
        let mut r = keyed_rel();
        r.insert(tuple!["k1", "a", "b"], ConflictPolicy::Reject)
            .unwrap();
        r.insert(tuple!["k2", "a", "d"], ConflictPolicy::Reject)
            .unwrap();
        assert_eq!(r.scan_eq(&[1], &[Value::text("a")]).len(), 2);
        assert_eq!(r.scan_eq(&[2], &[Value::text("d")]).len(), 1);
        assert!(r.scan_eq(&[1], &[Value::Null]).is_empty());
    }

    #[test]
    fn substitution_unifies_and_dedups() {
        let mut r = RelationInstance::new(RelationSchema::with_any_columns("R", &["a", "b"]));
        r.insert(tuple!["x", Value::Labeled(1)], ConflictPolicy::Allow)
            .unwrap();
        r.insert(tuple!["x", "v"], ConflictPolicy::Allow).unwrap();
        let mut subst = HashMap::new();
        subst.insert(1u64, Value::text("v"));
        let changed = r.substitute_labeled(&subst);
        assert_eq!(changed, 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_rows_compacts_and_reindexes() {
        let mut r = keyed_rel();
        r.insert(tuple!["k1", "a", "b"], ConflictPolicy::Reject)
            .unwrap();
        r.insert(tuple!["k2", "c", "d"], ConflictPolicy::Reject)
            .unwrap();
        r.insert(tuple!["k3", "e", "f"], ConflictPolicy::Reject)
            .unwrap();
        r.remove_rows(&[1]);
        assert_eq!(r.len(), 2);
        assert!(r.lookup_pk(&[Value::text("k2")]).is_none());
        assert!(r.lookup_pk(&[Value::text("k3")]).is_some());
    }

    #[test]
    fn type_and_arity_checks() {
        let mut r = RelationInstance::new(RelationSchema::new(
            "T",
            vec![
                crate::Column::new("i", crate::DataType::Int),
                crate::Column::new("s", crate::DataType::Text).not_null(),
            ],
        ));
        assert!(matches!(
            r.insert(tuple![1i64], ConflictPolicy::Allow).unwrap_err(),
            StorageError::ArityMismatch { .. }
        ));
        assert!(matches!(
            r.insert(tuple!["no", "s"], ConflictPolicy::Allow)
                .unwrap_err(),
            StorageError::TypeMismatch { .. }
        ));
        assert!(matches!(
            r.insert(tuple![1i64, Value::Null], ConflictPolicy::Allow)
                .unwrap_err(),
            StorageError::NullViolation { .. }
        ));
        r.insert(tuple![1i64, "ok"], ConflictPolicy::Allow).unwrap();
    }

    #[test]
    fn atom_counts() {
        let mut r = RelationInstance::new(RelationSchema::with_any_columns("R", &["a", "b"]));
        r.insert(tuple!["x", Value::Null], ConflictPolicy::Allow)
            .unwrap();
        r.insert(tuple![Value::Labeled(1), "y"], ConflictPolicy::Allow)
            .unwrap();
        assert_eq!(r.constants(), 2);
        assert_eq!(r.nulls(), 2);
    }
}
