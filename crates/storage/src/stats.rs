//! Instance statistics — the paper's data-exchange quality measure.
//!
//! "The size of target instance (i.e., the number of atomic values in an
//! instance) is used as a measure of data exchange quality" (Section 5.1).
//! Figs. 9–10 split that size into *Constants* and *Null* bars; smaller is
//! better (less incompleteness / redundancy).

use std::fmt;
use std::ops::Add;

/// Atom-level statistics of an instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Number of tuples across all relations.
    pub tuples: usize,
    /// Number of constant atoms.
    pub constants: usize,
    /// Number of null atoms (SQL nulls and labeled nulls).
    pub nulls: usize,
}

impl InstanceStats {
    /// Total atoms = constants + nulls (the paper's *target size*).
    pub fn atoms(&self) -> usize {
        self.constants + self.nulls
    }
}

impl Add for InstanceStats {
    type Output = InstanceStats;
    fn add(self, rhs: InstanceStats) -> InstanceStats {
        InstanceStats {
            tuples: self.tuples + rhs.tuples,
            constants: self.constants + rhs.constants,
            nulls: self.nulls + rhs.nulls,
        }
    }
}

impl fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tuples, {} atoms ({} constants + {} nulls)",
            self.tuples,
            self.atoms(),
            self.constants,
            self.nulls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_is_sum() {
        let s = InstanceStats {
            tuples: 2,
            constants: 5,
            nulls: 3,
        };
        assert_eq!(s.atoms(), 8);
    }

    #[test]
    fn add_combines_componentwise() {
        let a = InstanceStats {
            tuples: 1,
            constants: 2,
            nulls: 3,
        };
        let b = InstanceStats {
            tuples: 4,
            constants: 5,
            nulls: 6,
        };
        let c = a + b;
        assert_eq!(
            c,
            InstanceStats {
                tuples: 5,
                constants: 7,
                nulls: 9
            }
        );
    }

    #[test]
    fn display_mentions_all_parts() {
        let s = InstanceStats {
            tuples: 1,
            constants: 2,
            nulls: 3,
        };
        let d = s.to_string();
        assert!(d.contains("5 atoms") && d.contains("2 constants") && d.contains("3 nulls"));
    }
}
