//! Chunked, copy-on-write row storage — the substrate for MVCC snapshot
//! reads.
//!
//! A [`Rows`] is a sequence of tuples stored as *sealed* immutable chunks
//! (each exactly [`CHUNK`] tuples, behind an `Arc`) plus one small mutable
//! tail. The shape buys two things at once:
//!
//! * **Cheap snapshots.** `Rows::clone()` bumps one `Arc` per sealed chunk
//!   and deep-copies only the tail (at most `CHUNK - 1` tuples), so a
//!   reader can capture a consistent view of a million-row relation in
//!   microseconds. This is what lets the service publish a point-in-time
//!   [`crate::instance::InstanceSnapshot`] at every batch boundary without
//!   slowing the writer down.
//! * **No copy-on-write tax on the append path.** The tail is never shared
//!   — a snapshot deep-copies it — so `push` mutates uniquely-owned memory
//!   even while arbitrarily many snapshots pin the sealed chunks. Only
//!   in-place row *replacement* (egd merges) pays a one-chunk copy, and
//!   only when a snapshot actually shares that chunk.
//!
//! Whole-set rebuilds (dedup, substitution, core minimisation) re-chunk
//! from a `Vec<Tuple>`; those operations were already O(n).

use std::ops::Index;
use std::sync::Arc;

use crate::tuple::Tuple;

/// Tuples per sealed chunk. Small enough that the snapshot tail copy and a
/// one-chunk copy-on-write stay cheap; large enough that per-chunk `Arc`
/// overhead disappears against tuple payloads.
pub const CHUNK: usize = 256;

/// A tuple sequence stored as sealed `Arc`'d chunks plus a mutable tail.
///
/// Cloning is the snapshot operation: sealed chunks are shared by
/// reference, the tail is deep-copied. Positional order is insertion
/// order, matching the `Vec<Tuple>` this type replaced — `RowId`s remain
/// stable positions.
#[derive(Debug, Clone, Default)]
pub struct Rows {
    /// Immutable full chunks (every one exactly `CHUNK` tuples long).
    sealed: Vec<Arc<Vec<Tuple>>>,
    /// The mutable tail (always shorter than `CHUNK`); never shared.
    tail: Vec<Tuple>,
}

impl Rows {
    /// An empty row set.
    pub fn new() -> Self {
        Rows::default()
    }

    /// Build from a plain vector, re-chunking it.
    pub fn from_vec(mut v: Vec<Tuple>) -> Self {
        let full = v.len() / CHUNK;
        let mut sealed = Vec::with_capacity(full);
        let tail = v.split_off(full * CHUNK);
        let mut rest = v;
        for _ in 0..full {
            let remainder = rest.split_off(CHUNK);
            sealed.push(Arc::new(rest));
            rest = remainder;
        }
        debug_assert!(rest.is_empty());
        Rows { sealed, tail }
    }

    /// Flatten back into a plain vector. Chunks still shared with a
    /// snapshot are copied; uniquely-owned ones are moved.
    pub fn into_vec(self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.len());
        for chunk in self.sealed {
            match Arc::try_unwrap(chunk) {
                Ok(v) => out.extend(v),
                Err(shared) => out.extend(shared.iter().cloned()),
            }
        }
        out.extend(self.tail);
        out
    }

    /// A deep copy of all tuples as a plain vector.
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK + self.tail.len()
    }

    /// Whether there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Tuple at position `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<&Tuple> {
        let sealed_len = self.sealed.len() * CHUNK;
        if i < sealed_len {
            Some(&self.sealed[i / CHUNK][i % CHUNK])
        } else {
            self.tail.get(i - sealed_len)
        }
    }

    /// Iterate tuples in positional order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.sealed
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }

    /// Append a tuple; seals the tail into an immutable chunk when it
    /// reaches [`CHUNK`]. Never copies shared memory.
    pub fn push(&mut self, t: Tuple) {
        self.tail.push(t);
        if self.tail.len() == CHUNK {
            let full = std::mem::take(&mut self.tail);
            self.sealed.push(Arc::new(full));
        }
    }

    /// Replace the tuple at position `i`. A sealed chunk shared with a
    /// snapshot is copied first (one chunk, not the whole set); the
    /// snapshot keeps the old row.
    pub fn set(&mut self, i: usize, t: Tuple) {
        let sealed_len = self.sealed.len() * CHUNK;
        if i < sealed_len {
            Arc::make_mut(&mut self.sealed[i / CHUNK])[i % CHUNK] = t;
        } else {
            self.tail[i - sealed_len] = t;
        }
    }

    /// Mutate tuples in place, copy-on-write per chunk: a sealed chunk is
    /// only cloned (and only once) when `hit` says some tuple in it will
    /// actually change. Returns the sum of `apply`'s returns — callers use
    /// it to count replaced values.
    pub fn for_each_mut_where(
        &mut self,
        hit: impl Fn(&Tuple) -> bool,
        mut apply: impl FnMut(&mut Tuple) -> usize,
    ) -> usize {
        let mut changed = 0;
        for chunk in &mut self.sealed {
            if chunk.iter().any(&hit) {
                for t in Arc::make_mut(chunk).iter_mut() {
                    changed += apply(t);
                }
            }
        }
        for t in &mut self.tail {
            changed += apply(t);
        }
        changed
    }

    /// How many sealed chunks are currently shared with at least one
    /// snapshot — observability for tests pinning the cheap-clone claim.
    pub fn shared_chunks(&self) -> usize {
        self.sealed
            .iter()
            .filter(|c| Arc::strong_count(c) > 1)
            .count()
    }
}

impl Index<usize> for Rows {
    type Output = Tuple;

    fn index(&self, i: usize) -> &Tuple {
        self.get(i).expect("row index out of bounds")
    }
}

impl PartialEq for Rows {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Rows {}

impl FromIterator<Tuple> for Rows {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Rows::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Rows {
    type Item = &'a Tuple;
    type IntoIter = Box<dyn Iterator<Item = &'a Tuple> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::Value;

    fn n_rows(n: usize) -> Rows {
        let mut r = Rows::new();
        for i in 0..n {
            r.push(tuple![i as i64]);
        }
        r
    }

    #[test]
    fn push_get_iter_roundtrip_across_chunk_boundaries() {
        for n in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 7] {
            let r = n_rows(n);
            assert_eq!(r.len(), n);
            assert_eq!(r.is_empty(), n == 0);
            for i in 0..n {
                assert_eq!(r.get(i), Some(&tuple![i as i64]), "n={n} i={i}");
                assert_eq!(&r[i], &tuple![i as i64]);
            }
            assert!(r.get(n).is_none());
            let collected: Vec<&Tuple> = r.iter().collect();
            assert_eq!(collected.len(), n);
            assert_eq!(r.to_vec(), r.clone().into_vec());
        }
    }

    #[test]
    fn from_vec_matches_pushes() {
        for n in [0, 5, CHUNK, 2 * CHUNK + 3] {
            let v: Vec<Tuple> = (0..n).map(|i| tuple![i as i64]).collect();
            assert_eq!(Rows::from_vec(v.clone()), n_rows(n));
            assert_eq!(Rows::from_vec(v.clone()).into_vec(), v);
        }
    }

    #[test]
    fn clone_is_a_stable_snapshot() {
        let mut live = n_rows(2 * CHUNK + 10);
        let snap = live.clone();
        let before = snap.to_vec();
        // Appends, in-place replacement in a sealed chunk, and tail edits
        // must all be invisible to the snapshot.
        live.push(tuple![999i64]);
        live.set(3, tuple![-3i64]);
        live.set(2 * CHUNK + 5, tuple![-5i64]);
        assert_eq!(snap.to_vec(), before);
        assert_eq!(live.get(3), Some(&tuple![-3i64]));
        assert_eq!(live.get(2 * CHUNK + 5), Some(&tuple![-5i64]));
        assert_eq!(live.len(), before.len() + 1);
    }

    #[test]
    fn snapshot_shares_sealed_chunks_without_copying() {
        let live = n_rows(4 * CHUNK);
        assert_eq!(live.shared_chunks(), 0);
        let _snap = live.clone();
        assert_eq!(live.shared_chunks(), 4);
    }

    #[test]
    fn copy_on_write_touches_one_chunk() {
        let mut live = n_rows(4 * CHUNK);
        let _snap = live.clone();
        live.set(CHUNK + 1, tuple![0i64]);
        // Only the chunk containing the replaced row was copied.
        assert_eq!(live.shared_chunks(), 3);
    }

    #[test]
    fn for_each_mut_where_skips_untouched_shared_chunks() {
        let mut live = n_rows(3 * CHUNK);
        let _snap = live.clone();
        let target = Value::int((2 * CHUNK + 1) as i64);
        let changed = live.for_each_mut_where(
            |t| t.values()[0] == target,
            |t| {
                if t.values()[0] == target {
                    *t = tuple![-1i64];
                    1
                } else {
                    0
                }
            },
        );
        assert_eq!(changed, 1);
        // Chunks 0 and 1 stay shared; only chunk 2 was copied.
        assert_eq!(live.shared_chunks(), 2);
        assert_eq!(live.get(2 * CHUNK + 1), Some(&tuple![-1i64]));
    }
}
