//! Relation schemas and the whole-database catalog.
//!
//! A relational schema in the paper is a finite set `R = {r1, ..., rk}` of
//! relations of fixed arity, each with an optional primary key and a set of
//! foreign keys. Foreign keys are what turn a flat schema into the *nested*
//! view the tree representation of Section 3 builds on: an edge from property
//! `p1` to `p2` exists when `p1` (a key) uniquely identifies `p2`.

use std::collections::HashMap;
use std::fmt;

use crate::error::StorageError;
use crate::types::DataType;
use crate::Result;

/// A column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column (property) name, unique within the relation.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether SQL nulls are permitted. Source relations in SEDEX may carry
    /// nulls (interpreted as "property does not exist"); key columns are
    /// implicitly non-nullable.
    pub nullable: bool,
}

impl Column {
    /// A nullable column of the given type.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// An untyped nullable column — the common case in generated scenarios,
    /// where values are synthetic strings.
    pub fn any(name: impl Into<String>) -> Self {
        Column::new(name, DataType::Any)
    }

    /// Make the column non-nullable.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// A foreign key: `columns` of the owning relation reference `ref_columns`
/// (a key) of `ref_relation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column indexes in the owning relation.
    pub columns: Vec<usize>,
    /// Referenced relation name.
    pub ref_relation: String,
    /// Referenced column indexes in `ref_relation`.
    pub ref_columns: Vec<usize>,
}

/// Schema of a single relation.
///
/// ```
/// use sedex_storage::{RelationSchema, Schema};
/// let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
///     .primary_key(&["dname"]).unwrap();
/// let student = RelationSchema::with_any_columns("Student", &["sname", "dep"])
///     .primary_key(&["sname"]).unwrap()
///     .foreign_key(&["dep"], "Dep").unwrap();
/// let schema = Schema::from_relations(vec![dep, student]).unwrap();
/// assert_eq!(schema.relation("Student").unwrap().foreign_keys.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, unique within the [`Schema`].
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Primary-key column indexes. Empty means *no primary key* — the
    /// relation tree then gets a dummy `*` root (Def. 1). A multi-column key
    /// also yields a dummy root.
    pub primary_key: Vec<usize>,
    /// Additional unique constraints (each a set of column indexes).
    pub unique: Vec<Vec<usize>>,
    /// Foreign keys into other relations.
    pub foreign_keys: Vec<ForeignKey>,
}

impl RelationSchema {
    /// Start building a relation schema with the given name and columns.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        RelationSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            unique: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Convenience: a relation whose columns are all untyped (`Any`).
    pub fn with_any_columns<S: AsRef<str>>(name: impl Into<String>, cols: &[S]) -> Self {
        RelationSchema::new(name, cols.iter().map(|c| Column::any(c.as_ref())).collect())
    }

    /// Declare the primary key by column names.
    pub fn primary_key<S: AsRef<str>>(mut self, cols: &[S]) -> Result<Self> {
        let mut idxs = Vec::with_capacity(cols.len());
        for c in cols {
            idxs.push(self.column_index(c.as_ref()).ok_or_else(|| {
                StorageError::UnknownColumn {
                    relation: self.name.clone(),
                    column: c.as_ref().to_owned(),
                }
            })?);
        }
        for &i in &idxs {
            self.columns[i].nullable = false;
        }
        self.primary_key = idxs;
        Ok(self)
    }

    /// Declare a unique constraint by column names.
    pub fn unique_on<S: AsRef<str>>(mut self, cols: &[S]) -> Result<Self> {
        let mut idxs = Vec::with_capacity(cols.len());
        for c in cols {
            idxs.push(self.column_index(c.as_ref()).ok_or_else(|| {
                StorageError::UnknownColumn {
                    relation: self.name.clone(),
                    column: c.as_ref().to_owned(),
                }
            })?);
        }
        self.unique.push(idxs);
        Ok(self)
    }

    /// Declare a foreign key by column names. The referenced columns default
    /// to the referenced relation's primary key and are resolved when the
    /// relation is added to a [`Schema`]; use [`Schema::add_foreign_key`] for
    /// explicit referenced columns.
    pub fn foreign_key<S: AsRef<str>>(
        mut self,
        cols: &[S],
        ref_relation: impl Into<String>,
    ) -> Result<Self> {
        let mut idxs = Vec::with_capacity(cols.len());
        for c in cols {
            idxs.push(self.column_index(c.as_ref()).ok_or_else(|| {
                StorageError::UnknownColumn {
                    relation: self.name.clone(),
                    column: c.as_ref().to_owned(),
                }
            })?);
        }
        self.foreign_keys.push(ForeignKey {
            columns: idxs,
            ref_relation: ref_relation.into(),
            // Resolved against the referenced relation's PK by Schema::validate.
            ref_columns: Vec::new(),
        });
        Ok(self)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column, if any.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }

    /// Whether the relation has a *single-column* primary key — the case in
    /// which the relation tree roots at that key rather than at a dummy node.
    pub fn single_column_key(&self) -> Option<usize> {
        match self.primary_key.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Whether the relation declares any primary key (of any width).
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.name)?;
            if self.primary_key.contains(&i) {
                write!(f, "*")?;
            }
        }
        write!(f, ")")
    }
}

/// A database schema: an ordered catalog of relation schemas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build a schema from relation schemas, validating foreign keys.
    pub fn from_relations(rels: Vec<RelationSchema>) -> Result<Self> {
        let mut s = Schema::new();
        for r in rels {
            s.add_relation(r)?;
        }
        s.validate()?;
        Ok(s)
    }

    /// Add a relation schema. Foreign keys are validated lazily by
    /// [`Schema::validate`] so relations may be added in any order.
    pub fn add_relation(&mut self, rel: RelationSchema) -> Result<()> {
        if self.by_name.contains_key(&rel.name) {
            return Err(StorageError::DuplicateRelation(rel.name));
        }
        self.by_name.insert(rel.name.clone(), self.relations.len());
        self.relations.push(rel);
        Ok(())
    }

    /// Resolve foreign keys (defaulting unreferenced `ref_columns` to the
    /// target's primary key) and check that every reference is well-formed.
    pub fn validate(&mut self) -> Result<()> {
        // Collect the resolution targets first to appease the borrow checker.
        let pk_of: HashMap<String, Vec<usize>> = self
            .relations
            .iter()
            .map(|r| (r.name.clone(), r.primary_key.clone()))
            .collect();
        for rel in &mut self.relations {
            for fk in &mut rel.foreign_keys {
                let target_pk = pk_of.get(&fk.ref_relation).ok_or_else(|| {
                    StorageError::InvalidForeignKey(format!(
                        "{} references unknown relation {}",
                        rel.name, fk.ref_relation
                    ))
                })?;
                if fk.ref_columns.is_empty() {
                    fk.ref_columns = target_pk.clone();
                }
                if fk.ref_columns.is_empty() {
                    return Err(StorageError::InvalidForeignKey(format!(
                        "{} references {} which has no primary key",
                        rel.name, fk.ref_relation
                    )));
                }
                if fk.ref_columns.len() != fk.columns.len() {
                    return Err(StorageError::InvalidForeignKey(format!(
                        "{} -> {}: column count mismatch ({} vs {})",
                        rel.name,
                        fk.ref_relation,
                        fk.columns.len(),
                        fk.ref_columns.len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// Look up a relation schema by name, erroring when missing.
    pub fn relation_or_err(&self, name: &str) -> Result<&RelationSchema> {
        self.relation(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_owned()))
    }

    /// All relation schemas in insertion order.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// Relation names in insertion order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|r| r.name.as_str())
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Add an explicit foreign key after relations exist.
    pub fn add_foreign_key(
        &mut self,
        relation: &str,
        cols: &[&str],
        ref_relation: &str,
        ref_cols: &[&str],
    ) -> Result<()> {
        let ref_idx: Vec<usize> = {
            let r = self.relation_or_err(ref_relation)?;
            ref_cols
                .iter()
                .map(|c| {
                    r.column_index(c)
                        .ok_or_else(|| StorageError::UnknownColumn {
                            relation: ref_relation.to_owned(),
                            column: (*c).to_owned(),
                        })
                })
                .collect::<Result<_>>()?
        };
        let idx = *self
            .by_name
            .get(relation)
            .ok_or_else(|| StorageError::UnknownRelation(relation.to_owned()))?;
        let rel = &mut self.relations[idx];
        let cols_idx: Vec<usize> = cols
            .iter()
            .map(|c| {
                rel.column_index(c)
                    .ok_or_else(|| StorageError::UnknownColumn {
                        relation: relation.to_owned(),
                        column: (*c).to_owned(),
                    })
            })
            .collect::<Result<_>>()?;
        if cols_idx.len() != ref_idx.len() {
            return Err(StorageError::InvalidForeignKey(format!(
                "{relation} -> {ref_relation}: column count mismatch"
            )));
        }
        rel.foreign_keys.push(ForeignKey {
            columns: cols_idx,
            ref_relation: ref_relation.to_owned(),
            ref_columns: ref_idx,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student_schema() -> Schema {
        // The running example of Fig. 2 (source side).
        let student =
            RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
                .primary_key(&["sname"])
                .unwrap()
                .foreign_key(&["dep"], "Dep")
                .unwrap()
                .foreign_key(&["supervisor"], "Prof")
                .unwrap();
        let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
            .primary_key(&["pname"])
            .unwrap()
            .foreign_key(&["profdep"], "Dep")
            .unwrap();
        let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
            .primary_key(&["dname"])
            .unwrap();
        let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
            .foreign_key(&["sname"], "Student")
            .unwrap();
        Schema::from_relations(vec![student, prof, dep, reg]).unwrap()
    }

    #[test]
    fn builds_and_resolves_fks() {
        let s = student_schema();
        assert_eq!(s.len(), 4);
        let student = s.relation("Student").unwrap();
        assert_eq!(student.foreign_keys.len(), 2);
        // ref_columns resolved to Dep's PK (index 0).
        assert_eq!(student.foreign_keys[0].ref_columns, vec![0]);
        assert_eq!(student.single_column_key(), Some(0));
        let reg = s.relation("Registration").unwrap();
        assert!(!reg.has_primary_key());
        assert_eq!(reg.single_column_key(), None);
    }

    #[test]
    fn rejects_duplicate_relation() {
        let mut s = Schema::new();
        s.add_relation(RelationSchema::with_any_columns("R", &["a"]))
            .unwrap();
        let err = s
            .add_relation(RelationSchema::with_any_columns("R", &["b"]))
            .unwrap_err();
        assert_eq!(err, StorageError::DuplicateRelation("R".into()));
    }

    #[test]
    fn rejects_fk_to_unknown_relation() {
        let r = RelationSchema::with_any_columns("R", &["a", "b"])
            .foreign_key(&["b"], "Nope")
            .unwrap();
        let err = Schema::from_relations(vec![r]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidForeignKey(_)));
    }

    #[test]
    fn rejects_fk_to_keyless_relation() {
        let r = RelationSchema::with_any_columns("R", &["a"])
            .foreign_key(&["a"], "S")
            .unwrap();
        let s = RelationSchema::with_any_columns("S", &["x"]);
        let err = Schema::from_relations(vec![r, s]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidForeignKey(_)));
    }

    #[test]
    fn pk_columns_become_non_nullable() {
        let r = RelationSchema::with_any_columns("R", &["a", "b"])
            .primary_key(&["a"])
            .unwrap();
        assert!(!r.columns[0].nullable);
        assert!(r.columns[1].nullable);
    }

    #[test]
    fn unknown_pk_column_is_an_error() {
        let err = RelationSchema::with_any_columns("R", &["a"])
            .primary_key(&["zz"])
            .unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn { .. }));
    }

    #[test]
    fn explicit_fk_resolution() {
        let mut s = Schema::new();
        s.add_relation(
            RelationSchema::with_any_columns("A", &["x", "y"])
                .primary_key(&["x"])
                .unwrap(),
        )
        .unwrap();
        s.add_relation(
            RelationSchema::with_any_columns("B", &["k", "ax"])
                .primary_key(&["k"])
                .unwrap(),
        )
        .unwrap();
        s.add_foreign_key("B", &["ax"], "A", &["x"]).unwrap();
        let b = s.relation("B").unwrap();
        assert_eq!(b.foreign_keys[0].columns, vec![1]);
        assert_eq!(b.foreign_keys[0].ref_columns, vec![0]);
    }

    #[test]
    fn display_marks_key_columns() {
        let s = student_schema();
        let d = s.relation("Dep").unwrap().to_string();
        assert_eq!(d, "Dep(dname*, building)");
    }
}
