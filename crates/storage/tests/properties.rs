//! Property tests for the storage substrate: insert-policy laws, index
//! consistency and substitution behaviour under randomized workloads.
//!
//! Deterministic: workloads are generated from seeded SplitMix64 streams,
//! so every run exercises the same (broad) input set with no external
//! property-testing dependency.

use sedex_storage::{
    ConflictPolicy, InsertOutcome, Instance, RelationSchema, Schema, Tuple, Value,
};

/// SplitMix64 — tiny, seedable, good enough to diversify test inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn keyed_instance() -> Instance {
    let r = RelationSchema::with_any_columns("R", &["k", "a", "b"])
        .primary_key(&["k"])
        .unwrap();
    Instance::new(Schema::from_relations(vec![r]).unwrap())
}

/// Random small tuples over a narrow domain so keys collide often.
fn gen_tuple(rng: &mut Rng) -> Tuple {
    let v = |x: usize| {
        if x == 0 {
            Value::Null
        } else {
            Value::int(x as i64)
        }
    };
    Tuple::new(vec![
        Value::int(rng.below(6) as i64),
        v(rng.below(4)),
        v(rng.below(4)),
    ])
}

fn gen_workload(seed: u64, max: usize) -> Vec<Tuple> {
    let mut rng = Rng(seed);
    let n = 1 + rng.below(max);
    (0..n).map(|_| gen_tuple(&mut rng)).collect()
}

/// Under Skip, the first tuple for each key wins and the relation size
/// equals the number of distinct keys ever inserted.
#[test]
fn skip_policy_first_writer_wins() {
    for seed in 0..32u64 {
        let tuples = gen_workload(seed, 60);
        let mut inst = keyed_instance();
        let mut first_for_key = std::collections::HashMap::new();
        for t in &tuples {
            let k = t.values()[0].clone();
            first_for_key.entry(k).or_insert_with(|| t.clone());
            inst.insert("R", t.clone(), ConflictPolicy::Skip).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        assert_eq!(rel.len(), first_for_key.len(), "seed {seed}");
        for t in rel.iter() {
            let k = &t.values()[0];
            assert_eq!(t, &first_for_key[k], "seed {seed}");
        }
    }
}

/// Under Merge, every key holds at most one row and each row keeps at
/// least its key constant.
#[test]
fn merge_policy_accumulates_information() {
    for seed in 0..32u64 {
        let tuples = gen_workload(seed, 60);
        let mut inst = keyed_instance();
        for t in &tuples {
            // Ignore egd failures: conflicting constants keep the old value.
            let _ = inst.insert("R", t.clone(), ConflictPolicy::Merge);
        }
        let rel = inst.relation("R").unwrap();
        // No two rows share a key.
        let mut keys = std::collections::HashSet::new();
        for t in rel.iter() {
            assert!(keys.insert(t.values()[0].clone()), "seed {seed}");
        }
        for t in rel.iter() {
            assert!(t.constants() >= 1, "seed {seed}"); // at least the key
        }
    }
}

/// Set semantics: inserting the same multiset twice changes nothing.
#[test]
fn allow_policy_idempotent_on_replay() {
    for seed in 0..32u64 {
        let tuples = gen_workload(seed, 40);
        let r = RelationSchema::with_any_columns("S", &["k", "a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for t in &tuples {
            inst.insert("S", t.clone(), ConflictPolicy::Allow).unwrap();
        }
        let after_first = inst.relation("S").unwrap().len();
        for t in &tuples {
            let out = inst.insert("S", t.clone(), ConflictPolicy::Allow).unwrap();
            assert!(matches!(out, InsertOutcome::Duplicate(_)), "seed {seed}");
        }
        assert_eq!(
            inst.relation("S").unwrap().len(),
            after_first,
            "seed {seed}"
        );
    }
}

/// PK lookups agree with a linear scan after arbitrary insert sequences.
#[test]
fn pk_index_consistent_with_scan() {
    for seed in 0..32u64 {
        let tuples = gen_workload(seed, 60);
        let mut inst = keyed_instance();
        for t in &tuples {
            let _ = inst.insert("R", t.clone(), ConflictPolicy::Merge);
        }
        let rel = inst.relation("R").unwrap();
        for t in rel.iter() {
            let k = t.values()[0].clone();
            let via_index = rel.lookup_pk(std::slice::from_ref(&k));
            let via_scan = rel.iter().find(|u| u.values()[0] == k);
            assert_eq!(via_index, via_scan, "seed {seed}");
        }
    }
}

/// Labeled-null substitution: afterwards no substituted label remains, and
/// constants are untouched.
#[test]
fn substitution_removes_labels() {
    for seed in 0..32u64 {
        let mut rng = Rng(seed);
        let n = 1 + rng.below(30);
        let labels: Vec<u64> = (0..n).map(|_| rng.below(5) as u64).collect();
        let target = rng.below(5) as u64;
        let r = RelationSchema::with_any_columns("S", &["x"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for l in &labels {
            inst.insert(
                "S",
                Tuple::new(vec![Value::Labeled(*l)]),
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let mut sub = std::collections::HashMap::new();
        sub.insert(target, Value::text("resolved"));
        inst.substitute_labeled(&sub);
        for (_, rel) in inst.relations() {
            for t in rel.iter() {
                assert!(t.values()[0] != Value::Labeled(target), "seed {seed}");
            }
        }
    }
}

/// Stats are consistent: atoms = constants + nulls = tuples × arity.
#[test]
fn stats_accounting() {
    for seed in 0..32u64 {
        let tuples = gen_workload(seed, 50);
        let r = RelationSchema::with_any_columns("S", &["k", "a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for t in &tuples {
            inst.insert("S", t.clone(), ConflictPolicy::Allow).unwrap();
        }
        let s = inst.stats();
        assert_eq!(s.atoms(), s.constants + s.nulls, "seed {seed}");
        assert_eq!(s.atoms(), s.tuples * 3, "seed {seed}");
    }
}
