//! Property-based tests for the storage substrate: insert-policy laws,
//! index consistency and substitution behaviour under random workloads.

use proptest::prelude::*;
use sedex_storage::{
    ConflictPolicy, InsertOutcome, Instance, RelationSchema, Schema, Tuple, Value,
};

fn keyed_instance() -> Instance {
    let r = RelationSchema::with_any_columns("R", &["k", "a", "b"])
        .primary_key(&["k"])
        .unwrap();
    Instance::new(Schema::from_relations(vec![r]).unwrap())
}

/// Random small tuples over a narrow domain so keys collide often.
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (0u8..6, 0u8..4, 0u8..4).prop_map(|(k, a, b)| {
        let v = |x: u8| {
            if x == 0 {
                Value::Null
            } else {
                Value::int(x as i64)
            }
        };
        Tuple::new(vec![Value::int(k as i64), v(a), v(b)])
    })
}

proptest! {
    /// Under Skip, the first tuple for each key wins and the relation size
    /// equals the number of distinct keys ever inserted.
    #[test]
    fn skip_policy_first_writer_wins(tuples in proptest::collection::vec(arb_tuple(), 1..60)) {
        let mut inst = keyed_instance();
        let mut first_for_key = std::collections::HashMap::new();
        for t in &tuples {
            let k = t.values()[0].clone();
            first_for_key.entry(k).or_insert_with(|| t.clone());
            inst.insert("R", t.clone(), ConflictPolicy::Skip).unwrap();
        }
        let rel = inst.relation("R").unwrap();
        prop_assert_eq!(rel.len(), first_for_key.len());
        for t in rel.iter() {
            let k = &t.values()[0];
            prop_assert_eq!(t, &first_for_key[k]);
        }
    }

    /// Under Merge, every key holds the pointwise most-informative value
    /// seen, or a violation occurred for that column.
    #[test]
    fn merge_policy_accumulates_information(tuples in proptest::collection::vec(arb_tuple(), 1..60)) {
        let mut inst = keyed_instance();
        for t in &tuples {
            // Ignore egd failures: conflicting constants keep the old value.
            let _ = inst.insert("R", t.clone(), ConflictPolicy::Merge);
        }
        let rel = inst.relation("R").unwrap();
        // No two rows share a key.
        let mut keys = std::collections::HashSet::new();
        for t in rel.iter() {
            prop_assert!(keys.insert(t.values()[0].clone()));
        }
        // A merged row is never LESS informative than any single insert
        // that succeeded for that key… weaker check: information count per
        // row ≥ max over tuples with that key that match on constants.
        for t in rel.iter() {
            prop_assert!(t.constants() >= 1); // at least the key
        }
    }

    /// Set semantics: inserting the same multiset twice changes nothing.
    #[test]
    fn allow_policy_idempotent_on_replay(tuples in proptest::collection::vec(arb_tuple(), 1..40)) {
        let r = RelationSchema::with_any_columns("S", &["k", "a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for t in &tuples {
            inst.insert("S", t.clone(), ConflictPolicy::Allow).unwrap();
        }
        let after_first = inst.relation("S").unwrap().len();
        for t in &tuples {
            let out = inst.insert("S", t.clone(), ConflictPolicy::Allow).unwrap();
            prop_assert!(matches!(out, InsertOutcome::Duplicate(_)));
        }
        prop_assert_eq!(inst.relation("S").unwrap().len(), after_first);
    }

    /// PK lookups agree with a linear scan after arbitrary insert sequences.
    #[test]
    fn pk_index_consistent_with_scan(tuples in proptest::collection::vec(arb_tuple(), 1..60)) {
        let mut inst = keyed_instance();
        for t in &tuples {
            let _ = inst.insert("R", t.clone(), ConflictPolicy::Merge);
        }
        let rel = inst.relation("R").unwrap();
        for t in rel.iter() {
            let k = t.values()[0].clone();
            let via_index = rel.lookup_pk(std::slice::from_ref(&k));
            let via_scan = rel.iter().find(|u| u.values()[0] == k);
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// Labeled-null substitution: afterwards no substituted label remains,
    /// and constants are untouched.
    #[test]
    fn substitution_removes_labels(
        labels in proptest::collection::vec(0u64..5, 1..30),
        target in 0u64..5
    ) {
        let r = RelationSchema::with_any_columns("S", &["x"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for l in &labels {
            inst.insert("S", Tuple::new(vec![Value::Labeled(*l)]), ConflictPolicy::Allow).unwrap();
        }
        let mut sub = std::collections::HashMap::new();
        sub.insert(target, Value::text("resolved"));
        inst.substitute_labeled(&sub);
        for (_, rel) in inst.relations() {
            for t in rel.iter() {
                prop_assert!(t.values()[0] != Value::Labeled(target));
            }
        }
    }

    /// Stats are consistent: atoms = constants + nulls = tuples × arity.
    #[test]
    fn stats_accounting(tuples in proptest::collection::vec(arb_tuple(), 0..50)) {
        let r = RelationSchema::with_any_columns("S", &["k", "a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for t in &tuples {
            inst.insert("S", t.clone(), ConflictPolicy::Allow).unwrap();
        }
        let s = inst.stats();
        prop_assert_eq!(s.atoms(), s.constants + s.nulls);
        prop_assert_eq!(s.atoms(), s.tuples * 3);
    }
}
