//! Property tests relating the three similarity notions the crate offers:
//! pq-gram distance, windowed pq-grams and exact tree edit distance.
//!
//! Deterministic: cases are generated from seeded SplitMix64 streams, so
//! every run exercises the same (broad) input set with no external
//! property-testing dependency.

use sedex_pqgram::{normalized_distance, tree_edit_distance, PqGramProfile, Tree, WindowedProfile};

/// SplitMix64 — tiny, seedable, good enough to diversify test inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A random labeled tree with up to 21 nodes over a 4-letter alphabet —
/// the same shape distribution the original proptest strategy produced.
fn gen_tree(seed: u64) -> Tree<String> {
    let mut rng = Rng(seed);
    let labels = ["a", "b", "c", "d"];
    let r = rng.below(5);
    let mut t = Tree::new(labels[r % labels.len()].to_string());
    let mut ids = vec![t.root()];
    let n = rng.below(20);
    for i in 0..n {
        let parent = ids[rng.below(ids.len())];
        ids.push(t.add_child(parent, labels[(i + r) % labels.len()].to_string()));
    }
    t
}

/// Tree edit distance is a metric on ordered trees: identity, symmetry and
/// the size bound.
#[test]
fn ted_metric_basics() {
    for seed in 0..24u64 {
        let t1 = gen_tree(seed);
        let t2 = gen_tree(seed + 1000);
        assert_eq!(tree_edit_distance(&t1, &t1), 0);
        let d12 = tree_edit_distance(&t1, &t2);
        let d21 = tree_edit_distance(&t2, &t1);
        assert_eq!(d12, d21, "seed {seed}");
        assert!(d12 <= t1.len() + t2.len(), "seed {seed}");
    }
}

/// TED triangle inequality.
#[test]
fn ted_triangle() {
    for seed in 0..16u64 {
        let t1 = gen_tree(seed);
        let t2 = gen_tree(seed + 2000);
        let t3 = gen_tree(seed + 4000);
        let d13 = tree_edit_distance(&t1, &t3);
        let d12 = tree_edit_distance(&t1, &t2);
        let d23 = tree_edit_distance(&t2, &t3);
        assert!(d13 <= d12 + d23, "seed {seed}: {d13} > {d12} + {d23}");
    }
}

/// Identical trees are at distance 0 under every measure.
#[test]
fn identical_trees_zero_under_all_measures() {
    for seed in 0..24u64 {
        let t = gen_tree(seed);
        assert_eq!(tree_edit_distance(&t, &t), 0);
        let p = PqGramProfile::new(&t, 2, 1);
        assert_eq!(normalized_distance(&p, &p), 0.0);
        let w = WindowedProfile::new(&t, 2, 2, 3);
        assert_eq!(w.distance(&w), 0.0);
    }
}

/// A single-leaf insertion changes the pq-gram profile by a bounded number
/// of grams (the locality property behind linear-time updates).
#[test]
fn single_edit_bounded_profile_change() {
    for seed in 0..24u64 {
        let t = gen_tree(seed);
        let mut rng = Rng(seed ^ 0xDEAD_BEEF);
        let p1 = PqGramProfile::new(&t, 2, 1);
        let mut t2 = t.clone();
        let nodes = t2.preorder();
        let target = nodes[rng.below(nodes.len())];
        t2.add_child(target, "zz".to_string());
        let p2 = PqGramProfile::new(&t2, 2, 1);
        let sym_diff = p1.union_size(&p2) - p1.intersection_size(&p2);
        // Inserting one leaf perturbs at most a handful of grams: the new
        // node's gram, its parent's windows, and the former-leaf dummy.
        assert!(sym_diff <= 6, "seed {seed}: diff {sym_diff}");
    }
}

/// Windowed profiles are invariant under sibling reversal.
#[test]
fn windowed_sibling_invariance() {
    fn reversed(src: &Tree<String>) -> Tree<String> {
        fn rec(src: &Tree<String>, s: usize, dst: &mut Tree<String>, d: usize) {
            for &c in src.children(s).iter().rev() {
                let nd = dst.add_child(d, src.label(c).clone());
                rec(src, c, dst, nd);
            }
        }
        let mut out = Tree::new(src.label(src.root()).clone());
        let root = out.root();
        rec(src, src.root(), &mut out, root);
        out
    }
    for seed in 0..24u64 {
        let t = gen_tree(seed);
        let w1 = WindowedProfile::new(&t, 2, 2, 3);
        let w2 = WindowedProfile::new(&reversed(&t), 2, 2, 3);
        assert_eq!(w1.distance(&w2), 0.0, "seed {seed}");
    }
}

/// Profiles scale linearly in tree size for q=1 (count bound).
#[test]
fn profile_linear_bound() {
    for seed in 0..24u64 {
        let t = gen_tree(seed);
        for p in 1usize..4 {
            let prof = PqGramProfile::new(&t, p, 1);
            assert!(prof.len() <= 2 * t.len(), "seed {seed} p {p}");
        }
    }
}
