//! Property-based tests relating the three similarity notions the crate
//! offers: pq-gram distance, windowed pq-grams and exact tree edit
//! distance.

use proptest::prelude::*;
use sedex_pqgram::{normalized_distance, tree_edit_distance, PqGramProfile, Tree, WindowedProfile};

fn arb_tree() -> impl Strategy<Value = Tree<String>> {
    (0usize..5, proptest::collection::vec(0usize..50, 0..20)).prop_map(|(r, parents)| {
        let labels = ["a", "b", "c", "d"];
        let mut t = Tree::new(labels[r % labels.len()].to_string());
        let mut ids = vec![t.root()];
        for (i, p) in parents.iter().enumerate() {
            let parent = ids[p % ids.len()];
            ids.push(t.add_child(parent, labels[(i + r) % labels.len()].to_string()));
        }
        t
    })
}

proptest! {
    /// Tree edit distance is a metric on ordered trees: identity, symmetry
    /// and the size bound.
    #[test]
    fn ted_metric_basics(t1 in arb_tree(), t2 in arb_tree()) {
        prop_assert_eq!(tree_edit_distance(&t1, &t1), 0);
        let d12 = tree_edit_distance(&t1, &t2);
        let d21 = tree_edit_distance(&t2, &t1);
        prop_assert_eq!(d12, d21);
        prop_assert!(d12 <= t1.len() + t2.len());
    }

    /// TED triangle inequality.
    #[test]
    fn ted_triangle(t1 in arb_tree(), t2 in arb_tree(), t3 in arb_tree()) {
        let d13 = tree_edit_distance(&t1, &t3);
        let d12 = tree_edit_distance(&t1, &t2);
        let d23 = tree_edit_distance(&t2, &t3);
        prop_assert!(d13 <= d12 + d23);
    }

    /// pq-gram distance 0 implies TED 0 *up to sibling reorder*: since our
    /// profiles sort siblings, equal profiles mean the sorted trees are
    /// "pq-gram-indistinguishable". We check the weaker, always-true
    /// direction: identical trees → both distances 0.
    #[test]
    fn identical_trees_zero_under_all_measures(t in arb_tree()) {
        prop_assert_eq!(tree_edit_distance(&t, &t), 0);
        let p = PqGramProfile::new(&t, 2, 1);
        prop_assert_eq!(normalized_distance(&p, &p), 0.0);
        let w = WindowedProfile::new(&t, 2, 2, 3);
        prop_assert_eq!(w.distance(&w), 0.0);
    }

    /// A single-leaf insertion changes the pq-gram profile by a bounded
    /// number of grams (the locality property behind linear-time updates).
    #[test]
    fn single_edit_bounded_profile_change(t in arb_tree(), which in 0usize..20) {
        let p1 = PqGramProfile::new(&t, 2, 1);
        let mut t2 = t.clone();
        let nodes = t2.preorder();
        let target = nodes[which % nodes.len()];
        t2.add_child(target, "zz".to_string());
        let p2 = PqGramProfile::new(&t2, 2, 1);
        let sym_diff = p1.union_size(&p2) - p1.intersection_size(&p2);
        // Inserting one leaf perturbs at most a handful of grams: the new
        // node's gram, its parent's windows, and the former-leaf dummy.
        prop_assert!(sym_diff <= 6, "diff {sym_diff}");
    }

    /// Windowed profiles are invariant under sibling reversal.
    #[test]
    fn windowed_sibling_invariance(t in arb_tree()) {
        fn reversed(src: &Tree<String>) -> Tree<String> {
            fn rec(src: &Tree<String>, s: usize, dst: &mut Tree<String>, d: usize) {
                for &c in src.children(s).iter().rev() {
                    let nd = dst.add_child(d, src.label(c).clone());
                    rec(src, c, dst, nd);
                }
            }
            let mut out = Tree::new(src.label(src.root()).clone());
            let root = out.root();
            rec(src, src.root(), &mut out, root);
            out
        }
        let w1 = WindowedProfile::new(&t, 2, 2, 3);
        let w2 = WindowedProfile::new(&reversed(&t), 2, 2, 3);
        prop_assert_eq!(w1.distance(&w2), 0.0);
    }

    /// Profiles scale linearly in tree size for q=1 (count bound).
    #[test]
    fn profile_linear_bound(t in arb_tree(), p in 1usize..4) {
        let prof = PqGramProfile::new(&t, p, 1);
        prop_assert!(prof.len() <= 2 * t.len());
    }
}
