//! Windowed pq-grams for unordered trees (Augsten et al., VLDB J. 2012).
//!
//! Plain pq-grams are sensitive to sibling order. SEDEX's trees are
//! *unordered* (column order in a relation is irrelevant), which the paper
//! addresses by (a) sorting siblings lexicographically and (b) citing the
//! *windowed* pq-gram construction. With `q = 1` — the setting used in every
//! worked example of the paper — sorted plain pq-grams and windowed pq-grams
//! coincide; for `q > 1` this module implements the windowed construction:
//!
//! For each anchor node the (lexicographically sorted) children are treated
//! as a **circular** list. For every child `c_i`, a window holds `c_i` and
//! the `w − 1` children following it circularly; each windowed pq-gram is
//! the stem plus `c_i` plus one `(q−1)`-subset of the rest of the window,
//! with the subset kept in sorted order. Leaves contribute the all-dummy
//! window, exactly as in the plain construction.

use std::hash::Hash;

use crate::bag::Bag;
use crate::profile::{Gram, PqLabel};
use crate::tree::{NodeId, Tree};

/// A windowed pq-gram profile with parameters `(p, q, w)`, `w ≥ q`.
#[derive(Debug, Clone)]
pub struct WindowedProfile<L: Eq + Hash> {
    p: usize,
    q: usize,
    w: usize,
    grams: Bag<Gram<L>>,
}

impl<L: Clone + Eq + Hash + Ord> WindowedProfile<L> {
    /// Build the windowed profile of a tree of real labels.
    ///
    /// # Panics
    /// Panics when `p == 0`, `q == 0` or `w < q`.
    pub fn new(tree: &Tree<L>, p: usize, q: usize, w: usize) -> Self {
        let wrapped: Tree<PqLabel<L>> = tree.map_labels(|l| PqLabel::Label(l.clone()));
        Self::from_pq_tree(&wrapped, p, q, w)
    }

    /// Build the windowed profile of a tree that may contain dummy labels;
    /// dummies are never anchors (same convention as
    /// [`crate::profile::PqGramProfile::from_pq_tree`]).
    ///
    /// # Panics
    /// Panics when `p == 0`, `q == 0` or `w < q`.
    pub fn from_pq_tree(tree: &Tree<PqLabel<L>>, p: usize, q: usize, w: usize) -> Self {
        assert!(p > 0 && q > 0, "pq-gram parameters must be positive");
        assert!(w >= q, "window must be at least q wide");
        let mut sorted = tree.clone();
        sorted.sort_siblings();
        let mut grams = Bag::new();
        for anchor in sorted.preorder() {
            if sorted.label(anchor).is_dummy() {
                continue;
            }
            let stem = stem_of(&sorted, anchor, p);
            let kids: Vec<PqLabel<L>> = sorted
                .children(anchor)
                .iter()
                .map(|&c| sorted.label(c).clone())
                .collect();
            if kids.is_empty() {
                grams.insert(Gram {
                    stem: stem.clone(),
                    window: vec![PqLabel::Dummy; q],
                });
                continue;
            }
            let k = kids.len();
            for i in 0..k {
                // The w−1 children circularly following c_i, without wrapping
                // past a full revolution.
                let follow: Vec<PqLabel<L>> = (1..w)
                    .filter(|&j| j < k)
                    .map(|j| kids[(i + j) % k].clone())
                    .collect();
                // Pad with dummies when fewer than q−1 followers exist.
                for mut subset in subsets(&follow, q - 1) {
                    subset.sort();
                    let mut window = Vec::with_capacity(q);
                    window.push(kids[i].clone());
                    window.extend(subset);
                    while window.len() < q {
                        window.push(PqLabel::Dummy);
                    }
                    grams.insert(Gram {
                        stem: stem.clone(),
                        window,
                    });
                }
            }
        }
        WindowedProfile { p, q, w, grams }
    }
}

fn stem_of<L: Clone + Eq + Hash>(
    tree: &Tree<PqLabel<L>>,
    anchor: NodeId,
    p: usize,
) -> Vec<PqLabel<L>> {
    let mut rev = Vec::with_capacity(p);
    rev.push(tree.label(anchor).clone());
    let mut cur = anchor;
    for _ in 1..p {
        match tree.parent(cur) {
            Some(par) => {
                rev.push(tree.label(par).clone());
                cur = par;
            }
            None => rev.push(PqLabel::Dummy),
        }
    }
    rev.reverse();
    rev
}

/// All `k`-element subsets of `items` (by index combination). For `k = 0`
/// there is exactly one (empty) subset. When `items.len() < k`, the single
/// subset of all items is returned (the caller pads with dummies).
fn subsets<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    if items.len() <= k {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - k {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

impl<L: Eq + Hash> WindowedProfile<L> {
    /// The `p` parameter.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The `q` parameter.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The window width `w`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Number of grams with multiplicity.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// The underlying bag.
    pub fn bag(&self) -> &Bag<Gram<L>> {
        &self.grams
    }

    /// Normalized windowed pq-gram distance (same formula as the plain
    /// distance).
    ///
    /// # Panics
    /// Panics when the profiles' `(p, q, w)` parameters differ.
    pub fn distance(&self, other: &Self) -> f64 {
        assert_eq!(
            (self.p, self.q, self.w),
            (other.p, other.q, other.w),
            "profiles built with different (p,q,w) parameters"
        );
        let inter = self.grams.intersection_size(&other.grams) as f64;
        let union = self.grams.union_size(&other.grams) as f64;
        if union == inter {
            return 0.0;
        }
        (union - 2.0 * inter) / (union - inter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PqGramProfile;

    fn ta() -> Tree<String> {
        let mut t = Tree::new("d".to_string());
        t.add_child(0, "b".into());
        t.add_child(0, "c".into());
        let e = t.add_child(0, "e".into());
        t.add_child(e, "a".into());
        t.add_child(e, "d".into());
        t
    }

    #[test]
    fn q1_coincides_with_plain_profile() {
        // With q = 1 the subset part is empty, so windowed grams equal plain
        // grams on the sorted tree.
        let plain = PqGramProfile::new(&ta(), 2, 1);
        let win = WindowedProfile::new(&ta(), 2, 1, 2);
        assert_eq!(plain.len(), win.len());
        for (g, c) in plain.bag().iter() {
            assert_eq!(win.bag().count(g), c, "gram {g:?}");
        }
    }

    #[test]
    fn order_invariance_q2() {
        // Reordering siblings must not change the windowed profile.
        let base = WindowedProfile::new(&ta(), 2, 2, 3);
        let mut shuffled = Tree::new("d".to_string());
        let e = shuffled.add_child(0, "e".into());
        shuffled.add_child(0, "c".into());
        shuffled.add_child(0, "b".into());
        shuffled.add_child(e, "d".into());
        shuffled.add_child(e, "a".into());
        let other = WindowedProfile::new(&shuffled, 2, 2, 3);
        assert_eq!(base.distance(&other), 0.0);
    }

    #[test]
    fn distance_detects_label_changes() {
        let mut t2 = Tree::new("d".to_string());
        t2.add_child(0, "b".into());
        t2.add_child(0, "c".into());
        let e = t2.add_child(0, "e".into());
        t2.add_child(e, "a".into());
        t2.add_child(e, "ZZZ".into());
        let d = WindowedProfile::new(&ta(), 2, 2, 3).distance(&WindowedProfile::new(&t2, 2, 2, 3));
        // Distinguishable from identity (0) and from disjointness (1).
        assert!(d != 0.0 && d < 1.0, "d = {d}");
    }

    #[test]
    fn leaf_only_tree() {
        let t = Tree::new("x".to_string());
        let w = WindowedProfile::new(&t, 2, 2, 3);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn subsets_enumeration() {
        let items = [1, 2, 3];
        let s = subsets(&items, 2);
        assert_eq!(s, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert_eq!(subsets(&items, 0), vec![Vec::<i32>::new()]);
        assert_eq!(subsets(&items, 5), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn small_child_lists_pad_with_dummies() {
        // Node with a single child but q = 2: the window must pad.
        let mut t = Tree::new("r".to_string());
        t.add_child(0, "a".into());
        let w = WindowedProfile::new(&t, 2, 2, 3);
        // Anchors: r (1 child → 1 gram) and a (leaf → 1 gram).
        assert_eq!(w.len(), 2);
    }
}
