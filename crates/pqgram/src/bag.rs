//! Multisets (bags) with the intersection/union cardinalities used by the
//! pq-gram distance.

use std::collections::HashMap;
use std::hash::Hash;

/// A multiset over `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bag<T: Eq + Hash> {
    counts: HashMap<T, usize>,
    len: usize,
}

impl<T: Eq + Hash> Default for Bag<T> {
    fn default() -> Self {
        Bag {
            counts: HashMap::new(),
            len: 0,
        }
    }
}

impl<T: Eq + Hash> Bag<T> {
    /// An empty bag.
    pub fn new() -> Self {
        Bag::default()
    }

    /// Insert one occurrence.
    pub fn insert(&mut self, item: T) {
        *self.counts.entry(item).or_insert(0) += 1;
        self.len += 1;
    }

    /// Total number of occurrences (with multiplicity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct items.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity of an item.
    pub fn count(&self, item: &T) -> usize {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// `|self ⊓ other|`: sum over items of the minimum multiplicity.
    pub fn intersection_size(&self, other: &Bag<T>) -> usize {
        // Iterate the smaller map.
        let (small, big) = if self.counts.len() <= other.counts.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.counts.iter().map(|(k, &c)| c.min(big.count(k))).sum()
    }

    /// `|self ⊔ other|` under the convention the paper uses:
    /// `|A| + |B| − |A ⊓ B|` (so that `|∪| − |∩| = |A| + |B| − 2|∩|`).
    pub fn union_size(&self, other: &Bag<T>) -> usize {
        self.len + other.len - self.intersection_size(other)
    }

    /// Iterate `(item, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, usize)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }
}

impl<T: Eq + Hash> FromIterator<T> for Bag<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut b = Bag::new();
        for item in iter {
            b.insert(item);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicities() {
        let b: Bag<&str> = ["a", "b", "a"].into_iter().collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.distinct(), 2);
        assert_eq!(b.count(&"a"), 2);
        assert_eq!(b.count(&"zz"), 0);
    }

    #[test]
    fn intersection_uses_min_multiplicity() {
        let a: Bag<&str> = ["x", "x", "y"].into_iter().collect();
        let b: Bag<&str> = ["x", "y", "y", "z"].into_iter().collect();
        assert_eq!(a.intersection_size(&b), 2); // min(2,1)=1 for x, min(1,2)=1 for y
        assert_eq!(b.intersection_size(&a), 2); // symmetric
    }

    #[test]
    fn union_size_convention() {
        let a: Bag<&str> = ["x", "x", "y"].into_iter().collect();
        let b: Bag<&str> = ["x", "z"].into_iter().collect();
        // |A|=3, |B|=2, |∩|=1 → |∪|=4
        assert_eq!(a.union_size(&b), 4);
    }

    #[test]
    fn fig6_cardinalities() {
        // |ϕ(TA)|=9, |ϕ(TB)|=7, |∩|=4, |∪|=12 per the worked example.
        // Mimic with opaque tokens: 4 shared, 5 only in A, 3 only in B.
        let a: Bag<u32> = (0..9).collect();
        let b: Bag<u32> = (0..4).chain(100..103).collect();
        assert_eq!(a.intersection_size(&b), 4);
        assert_eq!(a.union_size(&b), 12);
    }

    #[test]
    fn empty_bag() {
        let e: Bag<u8> = Bag::new();
        let b: Bag<u8> = [1, 2].into_iter().collect();
        assert!(e.is_empty());
        assert_eq!(e.intersection_size(&b), 0);
        assert_eq!(e.union_size(&b), 2);
    }
}
