//! A generic arena-allocated labeled tree.

use std::fmt;

/// Index of a node inside a [`Tree`] arena.
pub type NodeId = usize;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node<L> {
    label: L,
    children: Vec<NodeId>,
    parent: Option<NodeId>,
}

/// A rooted, labeled tree stored in an arena.
///
/// Both relation trees and tuple trees (Section 3) are represented as
/// `Tree`s by the higher layers; this crate only cares about labels and
/// shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree<L> {
    nodes: Vec<Node<L>>,
    root: NodeId,
}

impl<L> Tree<L> {
    /// A tree consisting of a single root node.
    pub fn new(root_label: L) -> Self {
        Tree {
            nodes: vec![Node {
                label: root_label,
                children: Vec::new(),
                parent: None,
            }],
            root: 0,
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has only its root (it can never be truly empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Append a child with the given label under `parent`; returns its id.
    ///
    /// # Panics
    /// Panics when `parent` is not a valid node id.
    pub fn add_child(&mut self, parent: NodeId, label: L) -> NodeId {
        assert!(parent < self.nodes.len(), "invalid parent node id");
        let id = self.nodes.len();
        self.nodes.push(Node {
            label,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// The label of a node.
    pub fn label(&self, id: NodeId) -> &L {
        &self.nodes[id].label
    }

    /// The children of a node, in sibling order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id].children
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id].parent
    }

    /// Whether a node is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id].children.is_empty()
    }

    /// Node ids in pre-order (root first).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so they pop in sibling order.
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Node ids in post-order (root last). The script repository keys on the
    /// post-order label sequence of relation trees (Section 4.4.2).
    pub fn postorder(&self) -> Vec<NodeId> {
        // Pre-order with reversed child order, then reverse the output.
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in &self.nodes[id].children {
                stack.push(c);
            }
        }
        out.reverse();
        out
    }

    /// The tree's height: the number of **nodes** on the longest root→leaf
    /// path (so a single-node tree has height 1), matching the paper's
    /// definition.
    pub fn height(&self) -> usize {
        let mut best = 0usize;
        // (node, depth counted in nodes)
        let mut stack = vec![(self.root, 1usize)];
        while let Some((id, d)) = stack.pop() {
            if d > best {
                best = d;
            }
            for &c in &self.nodes[id].children {
                stack.push((c, d + 1));
            }
        }
        best
    }

    /// Depth of a node, counted in nodes from the root (root = 1).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 1;
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Map every label, preserving shape.
    pub fn map_labels<M, F>(&self, mut f: F) -> Tree<M>
    where
        F: FnMut(&L) -> M,
    {
        Tree {
            nodes: self
                .nodes
                .iter()
                .map(|n| Node {
                    label: f(&n.label),
                    children: n.children.clone(),
                    parent: n.parent,
                })
                .collect(),
            root: self.root,
        }
    }

    /// Iterate `(id, label)` pairs in arena order.
    pub fn labels(&self) -> impl Iterator<Item = (NodeId, &L)> {
        self.nodes.iter().enumerate().map(|(i, n)| (i, &n.label))
    }
}

impl<L: Ord> Tree<L> {
    /// Sort every sibling list lexicographically by label (the *tree
    /// sorting* step of Section 4.3). Stable, in place.
    pub fn sort_siblings(&mut self) {
        for i in 0..self.nodes.len() {
            let mut kids = std::mem::take(&mut self.nodes[i].children);
            kids.sort_by(|&a, &b| self.nodes[a].label.cmp(&self.nodes[b].label));
            self.nodes[i].children = kids;
        }
    }
}

impl<L: fmt::Display> Tree<L> {
    /// Render as an indented outline, for debugging and examples.
    pub fn render(&self) -> String {
        fn rec<L: fmt::Display>(t: &Tree<L>, id: NodeId, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&t.label(id).to_string());
            out.push('\n');
            for &c in t.children(id) {
                rec(t, c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(self, self.root, 0, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tree TA of Fig. 6(a): root d with children b, c, e; e has
    /// children a, d.
    pub(crate) fn fig6_ta() -> Tree<&'static str> {
        let mut t = Tree::new("d");
        t.add_child(t.root(), "b");
        t.add_child(t.root(), "c");
        let e = t.add_child(t.root(), "e");
        t.add_child(e, "a");
        t.add_child(e, "d");
        t
    }

    #[test]
    fn construction() {
        let t = fig6_ta();
        assert_eq!(t.len(), 6);
        assert_eq!(t.label(t.root()), &"d");
        assert_eq!(t.children(t.root()).len(), 3);
        assert!(t.is_leaf(1));
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn height_counts_nodes() {
        let t = fig6_ta();
        assert_eq!(t.height(), 3);
        let single = Tree::new("x");
        assert_eq!(single.height(), 1);
    }

    #[test]
    fn depth_counts_nodes() {
        let t = fig6_ta();
        assert_eq!(t.depth(t.root()), 1);
        let e = t.children(t.root())[2];
        let a = t.children(e)[0];
        assert_eq!(t.depth(a), 3);
    }

    #[test]
    fn preorder_and_postorder() {
        let t = fig6_ta();
        let pre: Vec<_> = t.preorder().iter().map(|&i| *t.label(i)).collect();
        assert_eq!(pre, vec!["d", "b", "c", "e", "a", "d"]);
        let post: Vec<_> = t.postorder().iter().map(|&i| *t.label(i)).collect();
        assert_eq!(post, vec!["b", "c", "a", "d", "e", "d"]);
    }

    #[test]
    fn sort_orders_siblings() {
        let mut t = Tree::new("r");
        t.add_child(0, "z");
        t.add_child(0, "a");
        t.add_child(0, "m");
        t.sort_siblings();
        let kids: Vec<_> = t.children(0).iter().map(|&i| *t.label(i)).collect();
        assert_eq!(kids, vec!["a", "m", "z"]);
    }

    #[test]
    fn map_labels_preserves_shape() {
        let t = fig6_ta();
        let u = t.map_labels(|l| l.to_uppercase());
        assert_eq!(u.len(), t.len());
        assert_eq!(u.label(u.root()), "D");
        assert_eq!(u.children(u.root()).len(), 3);
    }

    #[test]
    fn render_is_indented() {
        let t = fig6_ta();
        let r = t.render();
        assert!(r.starts_with("d\n"));
        assert!(r.contains("  e\n    a\n"));
    }
}
