//! Tree sorting — step 1 of the pq-gram pipeline.
//!
//! "The first step toward forming pq-grams is tree sorting, where siblings
//! are ordered lexicographically by node labels" (Section 4.3). A tree is
//! *ordered* when for every node, `i < j ⟹ l(p_i) ≤ l(p_j)` over its
//! children.

use crate::tree::Tree;

/// Return a sorted copy of the tree (siblings ordered by label).
pub fn sorted<L: Clone + Ord>(tree: &Tree<L>) -> Tree<L> {
    let mut t = tree.clone();
    t.sort_siblings();
    t
}

/// Whether every sibling list is in non-decreasing label order.
pub fn is_sorted<L: Ord>(tree: &Tree<L>) -> bool {
    tree.preorder().into_iter().all(|id| {
        tree.children(id)
            .windows(2)
            .all(|w| tree.label(w[0]) <= tree.label(w[1]))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_sorting() {
        // TA of Fig. 6(a): root d, children in document order (e, b, c) with
        // e having children (d, a); the sorted tree of Fig. 6(c) orders the
        // root's children as b, c, e and e's as a, d.
        let mut t = Tree::new("d");
        let e = t.add_child(0, "e");
        t.add_child(0, "b");
        t.add_child(0, "c");
        t.add_child(e, "d");
        t.add_child(e, "a");
        assert!(!is_sorted(&t));

        let s = sorted(&t);
        assert!(is_sorted(&s));
        let kids: Vec<_> = s.children(s.root()).iter().map(|&i| *s.label(i)).collect();
        assert_eq!(kids, vec!["b", "c", "e"]);
        let e_sorted = s.children(s.root())[2];
        let ekids: Vec<_> = s.children(e_sorted).iter().map(|&i| *s.label(i)).collect();
        assert_eq!(ekids, vec!["a", "d"]);
        // Original untouched.
        assert!(!is_sorted(&t));
    }

    #[test]
    fn sorting_is_idempotent() {
        let mut t = Tree::new(3u32);
        t.add_child(0, 2);
        t.add_child(0, 1);
        let s1 = sorted(&t);
        let s2 = sorted(&s1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn duplicate_labels_allowed() {
        let mut t = Tree::new("r");
        t.add_child(0, "a");
        t.add_child(0, "a");
        assert!(is_sorted(&t));
    }
}
