//! # sedex-pqgram
//!
//! Tree-similarity kernel of SEDEX (Section 4.3 of the paper): **pq-grams**
//! over lexicographically sorted trees, plus the **windowed pq-gram** variant
//! of Augsten et al. for unordered trees.
//!
//! Tree edit distance is NP-complete for unordered trees, so SEDEX measures
//! the distance between a source tuple tree and the candidate target relation
//! trees with pq-grams, which run in linear time and capture both
//! parent/child and sibling structure. The pipeline is:
//!
//! 1. **Sort** — order siblings lexicographically by label ([`sort`]).
//! 2. **Extend** — add `p-1` dummy ancestors above the root, `q-1` dummies
//!    around each child list and `q` dummy children below each leaf
//!    ([`extend`]; the profile builder does this implicitly).
//! 3. **Decompose** — slide a `(p,q)` window over the extended tree,
//!    producing the multiset of pq-grams ([`profile`]).
//! 4. **Distance** — compare two multisets with the normalized pq-gram
//!    distance ([`distance`]).
//!
//! The crate is generic over the label type so it serves both schema-level
//! trees (labels are property names mapped through correspondences) and any
//! other labeled tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bag;
pub mod distance;
pub mod extend;
pub mod profile;
pub mod sort;
pub mod ted;
pub mod tree;
pub mod windowed;

pub use bag::Bag;
pub use distance::normalized_distance;
pub use profile::{Gram, PqGramProfile, PqLabel};
pub use ted::{normalized_tree_edit_distance, tree_edit_distance};
pub use tree::{NodeId, Tree};
pub use windowed::WindowedProfile;
