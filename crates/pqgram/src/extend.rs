//! Tree extension — step 2 of the pq-gram pipeline.
//!
//! Given parameters `p, q > 0`, the tree is extended with dummy nodes
//! (Section 4.3, Fig. 6(d)):
//!
//! * `p − 1` ancestors added above the root,
//! * `q − 1` children before each first child and after each last child,
//! * `q` children below each leaf.
//!
//! [`crate::profile::PqGramProfile`] performs this extension implicitly
//! while sliding its window; this module materializes the extended tree for
//! inspection, examples and tests.

use crate::profile::PqLabel;
use crate::tree::Tree;

/// Materialize the `(p,q)`-extended tree, with dummies as
/// [`PqLabel::Dummy`].
///
/// # Panics
/// Panics when `p == 0` or `q == 0`.
pub fn extended<L: Clone>(tree: &Tree<L>, p: usize, q: usize) -> Tree<PqLabel<L>> {
    assert!(p > 0 && q > 0, "pq-gram parameters must be positive");
    // New root: chain of p-1 dummies above the original root.
    let mut out;
    let mut top;
    if p > 1 {
        out = Tree::new(PqLabel::Dummy);
        top = out.root();
        for _ in 0..p.saturating_sub(2) {
            top = out.add_child(top, PqLabel::Dummy);
        }
        top = out.add_child(top, PqLabel::Label(tree.label(tree.root()).clone()));
    } else {
        out = Tree::new(PqLabel::Label(tree.label(tree.root()).clone()));
        top = out.root();
    }
    copy_children(tree, tree.root(), &mut out, top, q);
    out
}

fn copy_children<L: Clone>(
    src: &Tree<L>,
    src_node: usize,
    dst: &mut Tree<PqLabel<L>>,
    dst_node: usize,
    q: usize,
) {
    let kids = src.children(src_node);
    if kids.is_empty() {
        for _ in 0..q {
            dst.add_child(dst_node, PqLabel::Dummy);
        }
        return;
    }
    for _ in 0..q - 1 {
        dst.add_child(dst_node, PqLabel::Dummy);
    }
    for &c in kids {
        let nc = dst.add_child(dst_node, PqLabel::Label(src.label(c).clone()));
        copy_children(src, c, dst, nc, q);
    }
    for _ in 0..q - 1 {
        dst.add_child(dst_node, PqLabel::Dummy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_ta() -> Tree<&'static str> {
        // Fig. 6(c): sorted TA.
        let mut t = Tree::new("d");
        t.add_child(0, "b");
        t.add_child(0, "c");
        let e = t.add_child(0, "e");
        t.add_child(e, "a");
        t.add_child(e, "d");
        t
    }

    #[test]
    fn fig6d_extension_p2_q1() {
        // p=2, q=1: one dummy ancestor above the root, one dummy child under
        // each leaf, no sibling padding (q-1 = 0).
        let e = extended(&sorted_ta(), 2, 1);
        assert_eq!(e.label(e.root()), &PqLabel::Dummy);
        let root_kids = e.children(e.root());
        assert_eq!(root_kids.len(), 1);
        let d = root_kids[0];
        assert_eq!(e.label(d), &PqLabel::Label("d"));
        // Original 6 nodes + 1 ancestor + 4 leaf dummies (b, c, a, d-leaf).
        assert_eq!(e.len(), 6 + 1 + 4);
        // b is a leaf: gets exactly one dummy child.
        let b = e.children(d)[0];
        assert_eq!(e.label(b), &PqLabel::Label("b"));
        assert_eq!(e.children(b).len(), 1);
        assert_eq!(e.label(e.children(b)[0]), &PqLabel::Dummy);
    }

    #[test]
    fn extension_p3_q2_padding() {
        let mut t = Tree::new("r");
        t.add_child(0, "x");
        let e = extended(&t, 3, 2);
        // Two dummy ancestors.
        assert_eq!(e.label(e.root()), &PqLabel::Dummy);
        let a1 = e.children(e.root())[0];
        assert_eq!(e.label(a1), &PqLabel::Dummy);
        let r = e.children(a1)[0];
        assert_eq!(e.label(r), &PqLabel::Label("r"));
        // r has q-1=1 dummy before and after its single child x.
        let rk: Vec<_> = e.children(r).iter().map(|&i| e.label(i).clone()).collect();
        assert_eq!(
            rk,
            vec![PqLabel::Dummy, PqLabel::Label("x"), PqLabel::Dummy]
        );
        // x is a leaf: exactly q=2 dummy children.
        let x = e.children(r)[1];
        assert_eq!(e.children(x).len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parameters_panic() {
        let t = Tree::new("r");
        let _ = extended(&t, 0, 1);
    }
}
