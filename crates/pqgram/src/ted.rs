//! Ordered tree edit distance (Zhang–Shasha) — the comparison baseline the
//! paper argues *against*.
//!
//! Section 4.3: "A conventional way of measuring tree similarity is tree
//! edit distance … computing tree edit distance is NP complete for
//! unordered trees", which is why SEDEX uses pq-grams. For *ordered* trees
//! the classic Zhang–Shasha algorithm computes the exact distance in
//! `O(n² · min(depth, leaves)²)` time — still far costlier than the
//! linear-time pq-gram profile, as the `ablations` bench demonstrates.
//!
//! Unit costs: insert 1, delete 1, relabel 1 (0 when labels are equal).

use crate::tree::{NodeId, Tree};

/// Exact ordered tree edit distance between two trees (Zhang–Shasha).
pub fn tree_edit_distance<L: Eq>(t1: &Tree<L>, t2: &Tree<L>) -> usize {
    let a = Prep::new(t1);
    let b = Prep::new(t2);
    let (n, m) = (a.post.len(), b.post.len());
    // treedist[i][j]: distance between subtrees rooted at postorder i / j.
    let mut td = vec![vec![0usize; m]; n];
    for &i in &a.keyroots {
        for &j in &b.keyroots {
            forest_dist(t1, t2, &a, &b, i, j, &mut td);
        }
    }
    td[n - 1][m - 1]
}

/// Normalized variant in `[0, 1]`: `ted / (|T1| + |T2|)` — comparable in
/// spirit to the normalized pq-gram distance, for side-by-side experiments.
pub fn normalized_tree_edit_distance<L: Eq>(t1: &Tree<L>, t2: &Tree<L>) -> f64 {
    let d = tree_edit_distance(t1, t2) as f64;
    d / (t1.len() + t2.len()) as f64
}

/// Precomputed postorder structures for one tree.
struct Prep {
    /// Node ids in postorder.
    post: Vec<NodeId>,
    /// `l[i]`: postorder index of the leftmost leaf descendant of postorder
    /// node `i`.
    l: Vec<usize>,
    /// Keyroots: nodes with a left sibling, plus the root (postorder
    /// indexes, ascending).
    keyroots: Vec<usize>,
}

impl Prep {
    fn new<L>(t: &Tree<L>) -> Self {
        let post = t.postorder();
        let n = post.len();
        let mut index_of = vec![0usize; t.len()];
        for (i, &id) in post.iter().enumerate() {
            index_of[id] = i;
        }
        // Leftmost leaf: descend along first children.
        let mut l = vec![0usize; n];
        for (i, &id) in post.iter().enumerate() {
            let mut cur = id;
            while let Some(&first) = t.children(cur).first() {
                cur = first;
            }
            l[i] = index_of[cur];
        }
        // Keyroots: for each distinct l-value keep the LAST (highest)
        // postorder index.
        let mut last_for_l: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (i, &li) in l.iter().enumerate() {
            last_for_l.insert(li, i);
        }
        let mut keyroots: Vec<usize> = last_for_l.into_values().collect();
        keyroots.sort_unstable();
        Prep { post, l, keyroots }
    }
}

fn forest_dist<L: Eq>(
    t1: &Tree<L>,
    t2: &Tree<L>,
    a: &Prep,
    b: &Prep,
    i: usize,
    j: usize,
    td: &mut [Vec<usize>],
) {
    let (li, lj) = (a.l[i], b.l[j]);
    let (rows, cols) = (i - li + 2, j - lj + 2);
    // fd[x][y]: forest distance with offsets (li-1, lj-1).
    let mut fd = vec![vec![0usize; cols]; rows];
    for x in 1..rows {
        fd[x][0] = fd[x - 1][0] + 1; // delete
    }
    for y in 1..cols {
        fd[0][y] = fd[0][y - 1] + 1; // insert
    }
    for x in 1..rows {
        for y in 1..cols {
            let (di, dj) = (li + x - 1, lj + y - 1);
            if a.l[di] == li && b.l[dj] == lj {
                let relabel = if t1.label(a.post[di]) == t2.label(b.post[dj]) {
                    0
                } else {
                    1
                };
                fd[x][y] = (fd[x - 1][y] + 1)
                    .min(fd[x][y - 1] + 1)
                    .min(fd[x - 1][y - 1] + relabel);
                td[di][dj] = fd[x][y];
            } else {
                let (px, py) = (a.l[di] - li, b.l[dj] - lj);
                fd[x][y] = (fd[x - 1][y] + 1)
                    .min(fd[x][y - 1] + 1)
                    .min(fd[px][py] + td[di][dj]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leafy(labels: &[&str]) -> Tree<String> {
        let mut t = Tree::new(labels[0].to_string());
        for l in &labels[1..] {
            t.add_child(0, l.to_string());
        }
        t
    }

    #[test]
    fn identical_trees_distance_zero() {
        let t = leafy(&["r", "a", "b", "c"]);
        assert_eq!(tree_edit_distance(&t, &t), 0);
        assert_eq!(normalized_tree_edit_distance(&t, &t), 0.0);
    }

    #[test]
    fn single_relabel_costs_one() {
        let t1 = leafy(&["r", "a", "b"]);
        let t2 = leafy(&["r", "a", "X"]);
        assert_eq!(tree_edit_distance(&t1, &t2), 1);
    }

    #[test]
    fn single_insert_costs_one() {
        let t1 = leafy(&["r", "a"]);
        let t2 = leafy(&["r", "a", "b"]);
        assert_eq!(tree_edit_distance(&t1, &t2), 1);
        assert_eq!(tree_edit_distance(&t2, &t1), 1);
    }

    #[test]
    fn single_node_vs_chain() {
        let t1 = Tree::new("a".to_string());
        let mut t2 = Tree::new("a".to_string());
        let b = t2.add_child(0, "b".to_string());
        t2.add_child(b, "c".to_string());
        assert_eq!(tree_edit_distance(&t1, &t2), 2);
    }

    #[test]
    fn fig6_trees_edit_distance() {
        // TA: d(b, c, e(a, d)); TB: d(b, c(f), e).
        // One optimal script: delete a, delete d-leaf, insert f = 3.
        let mut ta = Tree::new("d".to_string());
        ta.add_child(0, "b".into());
        ta.add_child(0, "c".into());
        let e = ta.add_child(0, "e".into());
        ta.add_child(e, "a".into());
        ta.add_child(e, "d".into());
        let mut tb = Tree::new("d".to_string());
        tb.add_child(0, "b".into());
        let c = tb.add_child(0, "c".into());
        tb.add_child(0, "e".into());
        tb.add_child(c, "f".into());
        assert_eq!(tree_edit_distance(&ta, &tb), 3);
    }

    #[test]
    fn disjoint_trees_cost_bounded_by_sizes() {
        let t1 = leafy(&["p", "q", "r"]);
        let t2 = leafy(&["x", "y"]);
        let d = tree_edit_distance(&t1, &t2);
        // Relabel min(n,m) and insert/delete the difference: here 3.
        assert_eq!(d, 3);
        assert!(d <= t1.len() + t2.len());
    }

    #[test]
    fn symmetric() {
        let mut t1 = Tree::new("r".to_string());
        let a = t1.add_child(0, "a".into());
        t1.add_child(a, "b".into());
        t1.add_child(0, "c".into());
        let t2 = leafy(&["r", "c", "a"]);
        assert_eq!(tree_edit_distance(&t1, &t2), tree_edit_distance(&t2, &t1));
    }

    #[test]
    fn triangle_inequality_on_small_family() {
        let trees = vec![
            leafy(&["r", "a"]),
            leafy(&["r", "a", "b"]),
            leafy(&["r", "b"]),
            Tree::new("r".to_string()),
        ];
        for x in &trees {
            for y in &trees {
                for z in &trees {
                    let dxz = tree_edit_distance(x, z);
                    let dxy = tree_edit_distance(x, y);
                    let dyz = tree_edit_distance(y, z);
                    assert!(dxz <= dxy + dyz);
                }
            }
        }
    }
}
