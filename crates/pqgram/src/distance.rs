//! The normalized pq-gram distance — step 4 of the pipeline.
//!
//! For profiles `ϕ(T1)` and `ϕ(T2)`:
//!
//! ```text
//!            |ϕ(T1) ∪ ϕ(T2)| − 2·|ϕ(T1) ∩ ϕ(T2)|
//! d(T1,T2) = ------------------------------------
//!            |ϕ(T1) ∪ ϕ(T2)| −   |ϕ(T1) ∩ ϕ(T2)|
//! ```
//!
//! with `|∪| = |ϕ(T1)| + |ϕ(T2)| − |∩|`. This is the exact formula of the
//! paper's worked examples (it reproduces d(TA,TB) = 0.50 and the 0.71 /
//! 0.76 / 1.0 values of the Registration example). It is `0` for identical
//! profiles and `1` for disjoint ones; note that for *highly* overlapping
//! profiles (intersection above one third of the union) the value dips below
//! zero — the function is strictly decreasing in the intersection size, so
//! `argmin`-style ranking (the `Match` function) is unaffected.

use std::hash::Hash;

use crate::profile::PqGramProfile;
use crate::tree::Tree;

/// Normalized pq-gram distance between two profiles (built with the same
/// `(p, q)`).
///
/// Two empty profiles are defined to be at distance `0`.
///
/// # Panics
/// Panics when the profiles were built with different `(p, q)` parameters —
/// comparing them would be meaningless.
pub fn normalized_distance<L: Eq + Hash>(a: &PqGramProfile<L>, b: &PqGramProfile<L>) -> f64 {
    assert_eq!(
        (a.p(), a.q()),
        (b.p(), b.q()),
        "profiles built with different (p,q) parameters"
    );
    let inter = a.intersection_size(b) as f64;
    let union = a.union_size(b) as f64;
    if union == inter {
        // Identical profiles (including both empty).
        return 0.0;
    }
    (union - 2.0 * inter) / (union - inter)
}

/// Convenience: build `(p,q)` profiles for two trees and return their
/// normalized distance.
///
/// ```
/// use sedex_pqgram::{distance::tree_distance, Tree};
/// // The paper's Fig. 6 example: d(TA, TB) = 0.50 with p=2, q=1.
/// let mut ta = Tree::new("d");
/// ta.add_child(0, "b");
/// ta.add_child(0, "c");
/// let e = ta.add_child(0, "e");
/// ta.add_child(e, "a");
/// ta.add_child(e, "d");
/// let mut tb = Tree::new("d");
/// tb.add_child(0, "b");
/// let c = tb.add_child(0, "c");
/// tb.add_child(0, "e");
/// tb.add_child(c, "f");
/// assert_eq!(tree_distance(&ta, &tb, 2, 1), 0.5);
/// ```
pub fn tree_distance<L: Clone + Eq + Hash + Ord>(
    t1: &Tree<L>,
    t2: &Tree<L>,
    p: usize,
    q: usize,
) -> f64 {
    let p1 = PqGramProfile::new(t1, p, q);
    let p2 = PqGramProfile::new(t2, p, q);
    normalized_distance(&p1, &p2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ta() -> Tree<String> {
        let mut t = Tree::new("d".to_string());
        t.add_child(0, "b".into());
        t.add_child(0, "c".into());
        let e = t.add_child(0, "e".into());
        t.add_child(e, "a".into());
        t.add_child(e, "d".into());
        t
    }

    fn tb() -> Tree<String> {
        let mut t = Tree::new("d".to_string());
        t.add_child(0, "b".into());
        let c = t.add_child(0, "c".into());
        t.add_child(0, "e".into());
        t.add_child(c, "f".into());
        t
    }

    #[test]
    fn fig6_distance_is_one_half() {
        // The paper: d(TA, TB) = (12 − 2·4) / (12 − 4) = 0.50.
        let d = tree_distance(&ta(), &tb(), 2, 1);
        assert!((d - 0.5).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        assert_eq!(tree_distance(&ta(), &ta(), 2, 1), 0.0);
    }

    #[test]
    fn disjoint_trees_have_distance_one() {
        let mut t1 = Tree::new("x".to_string());
        t1.add_child(0, "y".into());
        let mut t2 = Tree::new("p".to_string());
        t2.add_child(0, "q".into());
        assert_eq!(tree_distance(&t1, &t2, 2, 1), 1.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = tree_distance(&ta(), &tb(), 2, 1);
        let d2 = tree_distance(&tb(), &ta(), 2, 1);
        assert_eq!(d1, d2);
    }

    #[test]
    fn distance_at_most_one() {
        for (p, q) in [(1, 1), (2, 1), (2, 2), (3, 2)] {
            let d = tree_distance(&ta(), &tb(), p, q);
            assert!(d <= 1.0, "d={d} for p={p},q={q}");
            assert_eq!(tree_distance(&ta(), &ta(), p, q), 0.0);
        }
    }

    #[test]
    fn near_identical_trees_can_go_negative_but_rank_correctly() {
        // Strictly decreasing in the intersection: a tree differing in one
        // label is *closer* than one differing in two, even when the raw
        // values leave [0,1].
        let mut two_off = Tree::new("d".to_string());
        two_off.add_child(0, "X".into());
        two_off.add_child(0, "Y".into());
        let e2 = two_off.add_child(0, "e".into());
        two_off.add_child(e2, "a".into());
        two_off.add_child(e2, "d".into());
        let d_same = tree_distance(&ta(), &ta(), 2, 1);
        let d_two = tree_distance(&ta(), &two_off, 2, 1);
        assert!(d_same < d_two);
        assert!(d_two <= 1.0);
    }

    #[test]
    #[should_panic(expected = "different (p,q)")]
    fn mismatched_parameters_panic() {
        let p1 = PqGramProfile::new(&ta(), 2, 1);
        let p2 = PqGramProfile::new(&tb(), 3, 1);
        let _ = normalized_distance(&p1, &p2);
    }
}
