//! pq-gram profiles — step 3 of the pipeline.
//!
//! A pq-gram is a small connected subtree with `p + q` nodes: a stem of `p`
//! ancestor/descendant nodes `v1..vp` and a window of `q` consecutive
//! children of `vp` (Section 4.3). The multiset of a tree's pq-grams is its
//! *profile*, "a structured summary of the tree".
//!
//! Two conventions from the paper's worked examples are encoded here:
//!
//! * missing ancestors/children are padded with dummy (`*`) nodes, and
//! * grams are **anchored only at non-dummy nodes** — in particular a dummy
//!   root (the `*` placed when a relation has no single-column key, Def. 1)
//!   contributes grams as a *parent* (e.g. `(*, course; *)`) but is never
//!   itself an anchor. This reproduces the 13-gram profile the paper lists
//!   for the Registration tuple tree.

use std::fmt;
use std::hash::Hash;

use crate::bag::Bag;
use crate::tree::{NodeId, Tree};

/// A pq-gram node label: either a dummy `*` or a real label.
///
/// `Dummy` orders before every real label so that sorted trees keep their
/// padding at the edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PqLabel<L> {
    /// The dummy `*` padding node.
    Dummy,
    /// A real label.
    Label(L),
}

impl<L> PqLabel<L> {
    /// Whether this is the dummy label.
    pub fn is_dummy(&self) -> bool {
        matches!(self, PqLabel::Dummy)
    }
}

impl<L: fmt::Display> fmt::Display for PqLabel<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqLabel::Dummy => f.write_str("*"),
            PqLabel::Label(l) => write!(f, "{l}"),
        }
    }
}

/// One pq-gram: `p` stem labels followed by `q` window labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gram<L> {
    /// The ancestor path ending at the anchor node (`p` labels).
    pub stem: Vec<PqLabel<L>>,
    /// `q` consecutive children of the anchor.
    pub window: Vec<PqLabel<L>>,
}

impl<L: fmt::Display> fmt::Display for Gram<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.stem.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ";")?;
        for (i, l) in self.window.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// The pq-gram profile of a tree: a bag of [`Gram`]s.
#[derive(Debug, Clone)]
pub struct PqGramProfile<L: Eq + Hash> {
    p: usize,
    q: usize,
    grams: Bag<Gram<L>>,
}

impl<L: Clone + Eq + Hash + Ord> PqGramProfile<L> {
    /// Build the `(p,q)` profile of a tree whose labels are all real.
    /// Siblings are sorted lexicographically first (the tree-sorting step).
    ///
    /// # Panics
    /// Panics when `p == 0` or `q == 0`.
    pub fn new(tree: &Tree<L>, p: usize, q: usize) -> Self {
        let wrapped: Tree<PqLabel<L>> = tree.map_labels(|l| PqLabel::Label(l.clone()));
        Self::from_pq_tree(&wrapped, p, q)
    }

    /// Build the `(p,q)` profile of a tree that may contain dummy labels
    /// (e.g. a relation tree with a dummy `*` root). Dummy nodes pad grams
    /// but are never anchors.
    ///
    /// # Panics
    /// Panics when `p == 0` or `q == 0`.
    pub fn from_pq_tree(tree: &Tree<PqLabel<L>>, p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "pq-gram parameters must be positive");
        let mut sorted = tree.clone();
        sorted.sort_siblings();
        let mut grams = Bag::new();
        for anchor in sorted.preorder() {
            if sorted.label(anchor).is_dummy() {
                continue;
            }
            let stem = Self::stem_of(&sorted, anchor, p);
            for window in Self::windows_of(&sorted, anchor, q) {
                grams.insert(Gram {
                    stem: stem.clone(),
                    window,
                });
            }
        }
        PqGramProfile { p, q, grams }
    }

    /// The `p` stem labels: `p − 1` ancestors (dummy-padded above the root)
    /// followed by the anchor's own label.
    fn stem_of(tree: &Tree<PqLabel<L>>, anchor: NodeId, p: usize) -> Vec<PqLabel<L>> {
        let mut rev = Vec::with_capacity(p);
        rev.push(tree.label(anchor).clone());
        let mut cur = anchor;
        for _ in 1..p {
            match tree.parent(cur) {
                Some(par) => {
                    rev.push(tree.label(par).clone());
                    cur = par;
                }
                None => rev.push(PqLabel::Dummy),
            }
        }
        rev.reverse();
        rev
    }

    /// All `q`-wide windows over the anchor's (dummy-extended) child list.
    fn windows_of(tree: &Tree<PqLabel<L>>, anchor: NodeId, q: usize) -> Vec<Vec<PqLabel<L>>> {
        let kids = tree.children(anchor);
        if kids.is_empty() {
            // A leaf gets q dummy children: exactly one window of dummies.
            return vec![vec![PqLabel::Dummy; q]];
        }
        // Pad with q-1 dummies on each side, then slide a q-window.
        let mut padded: Vec<PqLabel<L>> = Vec::with_capacity(kids.len() + 2 * (q - 1));
        padded.extend(std::iter::repeat(PqLabel::Dummy).take(q - 1));
        padded.extend(kids.iter().map(|&c| tree.label(c).clone()));
        padded.extend(std::iter::repeat(PqLabel::Dummy).take(q - 1));
        padded.windows(q).map(|w| w.to_vec()).collect()
    }
}

impl<L: Eq + Hash> PqGramProfile<L> {
    /// The `p` parameter.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The `q` parameter.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of grams (with multiplicity) — `|ϕ^{p,q}(T)|`.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Whether the profile has no grams.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// The underlying bag of grams.
    pub fn bag(&self) -> &Bag<Gram<L>> {
        &self.grams
    }

    /// Bag-intersection cardinality with another profile.
    pub fn intersection_size(&self, other: &Self) -> usize {
        self.grams.intersection_size(&other.grams)
    }

    /// Bag-union cardinality with another profile.
    pub fn union_size(&self, other: &Self) -> usize {
        self.grams.union_size(&other.grams)
    }

    /// Whether the profile contains the given gram at least once.
    pub fn contains(&self, gram: &Gram<L>) -> bool {
        self.grams.count(gram) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gram(stem: &[&str], window: &[&str]) -> Gram<String> {
        let conv = |s: &&str| {
            if *s == "*" {
                PqLabel::Dummy
            } else {
                PqLabel::Label((*s).to_string())
            }
        };
        Gram {
            stem: stem.iter().map(conv).collect(),
            window: window.iter().map(conv).collect(),
        }
    }

    fn ta() -> Tree<String> {
        // Fig. 6(a), unsorted on purpose: the profile sorts internally.
        let mut t = Tree::new("d".to_string());
        let e = t.add_child(0, "e".into());
        t.add_child(0, "b".into());
        t.add_child(0, "c".into());
        t.add_child(e, "d".into());
        t.add_child(e, "a".into());
        t
    }

    fn tb() -> Tree<String> {
        // Fig. 6(b): root d, children b, c, e; c has child f.
        let mut t = Tree::new("d".to_string());
        t.add_child(0, "b".into());
        let c = t.add_child(0, "c".into());
        t.add_child(0, "e".into());
        t.add_child(c, "f".into());
        t
    }

    #[test]
    fn fig6_profile_ta() {
        // ϕ2,1(TA) from Section 4.3 — exactly these 9 grams.
        let p = PqGramProfile::new(&ta(), 2, 1);
        assert_eq!(p.len(), 9);
        for (stem, window) in [
            (["*", "d"], ["b"]),
            (["*", "d"], ["c"]),
            (["*", "d"], ["e"]),
            (["d", "b"], ["*"]),
            (["d", "c"], ["*"]),
            (["d", "e"], ["a"]),
            (["d", "e"], ["d"]),
            (["e", "a"], ["*"]),
            (["e", "d"], ["*"]),
        ] {
            assert!(
                p.contains(&gram(&stem, &window)),
                "missing gram ({stem:?};{window:?})"
            );
        }
    }

    #[test]
    fn fig6_profile_tb() {
        // ϕ2,1(TB) — exactly these 7 grams.
        let p = PqGramProfile::new(&tb(), 2, 1);
        assert_eq!(p.len(), 7);
        for (stem, window) in [
            (["*", "d"], ["b"]),
            (["*", "d"], ["c"]),
            (["*", "d"], ["e"]),
            (["d", "b"], ["*"]),
            (["d", "c"], ["f"]),
            (["d", "e"], ["*"]),
            (["c", "f"], ["*"]),
        ] {
            assert!(p.contains(&gram(&stem, &window)));
        }
    }

    #[test]
    fn fig6_intersection_and_union() {
        let a = PqGramProfile::new(&ta(), 2, 1);
        let b = PqGramProfile::new(&tb(), 2, 1);
        assert_eq!(a.intersection_size(&b), 4);
        assert_eq!(a.union_size(&b), 12);
    }

    #[test]
    fn dummy_root_is_not_an_anchor() {
        // A tree rooted at a dummy (relation with no PK): root contributes
        // as a stem parent only.
        let mut t: Tree<PqLabel<String>> = Tree::new(PqLabel::Dummy);
        t.add_child(0, PqLabel::Label("x".into()));
        t.add_child(0, PqLabel::Label("y".into()));
        let p = PqGramProfile::from_pq_tree(&t, 2, 1);
        // Only (*,x;*) and (*,y;*) — no (*,*;x) style grams.
        assert_eq!(p.len(), 2);
        assert!(p.contains(&gram(&["*", "x"], &["*"])));
        assert!(p.contains(&gram(&["*", "y"], &["*"])));
    }

    #[test]
    fn q2_windows_pad_siblings() {
        // root r with children a, b: windows of width 2 over [*, a, b, *]
        // are (*,a), (a,b), (b,*) → 3 grams at the root anchor, plus one
        // all-dummy window per leaf.
        let mut t = Tree::new("r".to_string());
        t.add_child(0, "a".into());
        t.add_child(0, "b".into());
        let p = PqGramProfile::new(&t, 2, 2);
        assert_eq!(p.len(), 3 + 2);
        assert!(p.contains(&gram(&["*", "r"], &["*", "a"])));
        assert!(p.contains(&gram(&["*", "r"], &["a", "b"])));
        assert!(p.contains(&gram(&["*", "r"], &["b", "*"])));
        assert!(p.contains(&gram(&["r", "a"], &["*", "*"])));
    }

    #[test]
    fn p3_stems_pad_ancestors() {
        let mut t = Tree::new("r".to_string());
        let a = t.add_child(0, "a".into());
        t.add_child(a, "b".into());
        let p = PqGramProfile::new(&t, 3, 1);
        // Anchors: r (stem *,*,r), a (stem *,r,a), b (stem r,a,b).
        assert_eq!(p.len(), 3);
        assert!(p.contains(&gram(&["*", "*", "r"], &["a"])));
        assert!(p.contains(&gram(&["*", "r", "a"], &["b"])));
        assert!(p.contains(&gram(&["r", "a", "b"], &["*"])));
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::new("x".to_string());
        let p = PqGramProfile::new(&t, 2, 1);
        assert_eq!(p.len(), 1);
        assert!(p.contains(&gram(&["*", "x"], &["*"])));
    }

    #[test]
    fn profile_ignores_input_sibling_order() {
        let sorted = PqGramProfile::new(&ta(), 2, 1);
        let mut reordered = Tree::new("d".to_string());
        reordered.add_child(0, "c".into());
        let e = reordered.add_child(0, "e".into());
        reordered.add_child(0, "b".into());
        reordered.add_child(e, "a".into());
        reordered.add_child(e, "d".into());
        let p2 = PqGramProfile::new(&reordered, 2, 1);
        assert_eq!(sorted.intersection_size(&p2), sorted.len());
        assert_eq!(sorted.len(), p2.len());
    }

    #[test]
    fn gram_display() {
        let g = gram(&["*", "d"], &["b"]);
        assert_eq!(g.to_string(), "(*,d;b)");
    }
}
