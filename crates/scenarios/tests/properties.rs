//! Property tests over the workload generators: determinism, referential
//! integrity and rule coverage for every scenario family.
//!
//! Deterministic: cases are enumerated or drawn from seeded streams, so
//! every run exercises the same (broad) input set with no external
//! property-testing dependency.

use sedex_scenarios::ambiguity::amb_only;
use sedex_scenarios::compose::{composed, Repetitions};
use sedex_scenarios::ibench::{stb, IbenchConfig};
use sedex_scenarios::stbench::{basic, BasicKind};

/// Population is deterministic in (scenario, seed, size) and every FK
/// value dereferences, for every STBenchmark basic kind.
#[test]
fn basics_populate_with_integrity() {
    for (kind_idx, kind) in BasicKind::all().iter().enumerate() {
        for (tuples, seed) in [(1, 7u64), (8, 123), (24, 481)] {
            let s = basic(*kind);
            let a = s.populate(tuples, seed).unwrap();
            let b = s.populate(tuples, seed).unwrap();
            for (name, rel) in a.relations() {
                assert_eq!(
                    rel.rows(),
                    b.relation(name).unwrap().rows(),
                    "kind {kind_idx} not deterministic"
                );
                // Every populated FK with a non-null value dereferences.
                let schema = rel.schema().clone();
                for (fk_idx, _) in schema.foreign_keys.iter().enumerate() {
                    for t in rel.iter() {
                        let key_null = schema.foreign_keys[fk_idx]
                            .columns
                            .iter()
                            .any(|&c| t.values()[c].is_any_null());
                        if !key_null {
                            assert!(
                                a.deref_fk(name, fk_idx, t).is_some(),
                                "{name}: dangling FK in {t}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// STB's pk_fraction monotonically controls how many target relations
/// carry keys.
#[test]
fn stb_pk_fraction_monotone() {
    for seed in [0u64, 13, 42, 97] {
        let count = |frac: f64| {
            let s = stb(&IbenchConfig {
                instances_per_primitive: 3,
                pk_fraction: frac,
                seed,
                ..IbenchConfig::default()
            });
            s.target
                .relations()
                .iter()
                .filter(|r| r.has_primary_key())
                .count()
        };
        let none = count(0.0);
        let half = count(0.5);
        let all = count(1.0);
        assert_eq!(none, 0, "seed {seed}");
        assert!(half <= all, "seed {seed}");
        let s = stb(&IbenchConfig {
            instances_per_primitive: 3,
            pk_fraction: 1.0,
            seed,
            ..IbenchConfig::default()
        });
        assert_eq!(all, s.target.len(), "seed {seed}");
    }
}

/// AMB generalization rows never mix subclass attributes: per row, exactly
/// one group's columns are non-null.
#[test]
fn amb_rows_belong_to_one_subclass() {
    for udps in 1usize..4 {
        for (tuples, seed) in [(2, 11u64), (7, 99), (11, 173)] {
            let s = amb_only(udps);
            let inst = s.populate(tuples, seed).unwrap();
            for u in 0..udps {
                let rel_name = if u % 2 == 0 {
                    format!("sc1x{u}_Entity")
                } else {
                    format!("sc2x{u}_Entity")
                };
                let rel = inst.relation(&rel_name).unwrap();
                let schema = rel.schema();
                let p_cols: Vec<usize> = schema
                    .columns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.name.contains("_p"))
                    .map(|(i, _)| i)
                    .collect();
                let n_cols: Vec<usize> = schema
                    .columns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.name.contains("_n") && !c.name.contains("_Entity"))
                    .map(|(i, _)| i)
                    .collect();
                for t in rel.iter() {
                    let p_live = p_cols.iter().any(|&i| !t.values()[i].is_null());
                    let n_live = n_cols.iter().any(|&i| !t.values()[i].is_null());
                    assert!(p_live != n_live, "{rel_name}: mixed row {t}");
                }
            }
        }
    }
}

/// Composed scenarios scale their relation counts linearly in the
/// repetition parameters.
#[test]
fn composition_scales_linearly() {
    for vp in 0usize..6 {
        for de in 0usize..6 {
            for cp in 0usize..4 {
                if vp + de + cp == 0 {
                    continue;
                }
                let s = composed("t", Repetitions { vp, de, cp });
                assert_eq!(s.source.len(), vp + 2 * de + cp, "vp={vp} de={de} cp={cp}");
                assert_eq!(s.target.len(), 2 * vp + de + cp, "vp={vp} de={de} cp={cp}");
            }
        }
    }
}
