//! The ambiguous generalization UDPs and the **AMB** dataset (Fig. 10).
//!
//! Both UDPs realize a generalization relation *differently* in source and
//! target — the scenario class the paper shows ++Spicy mishandles:
//!
//! * **sc1** — the source collapses all subclasses into a single `Entity`
//!   table (subclass attributes null for rows of the other subclass); the
//!   target keeps a shared `Entity` table plus one table per subclass,
//!   connected key-to-key.
//! * **sc2** — like sc1, but the source additionally carries an explicit
//!   discriminator column indicating the subclass.
//!
//! SEDEX resolves these because null properties never enter the tuple tree:
//! a `Person` row's tree covers exactly the person attributes and therefore
//! matches the `Person` target tree; mapping-level systems fire both
//! subclass mappings for every row and materialize redundant, null-padded
//! tuples.

use sedex_storage::RelationSchema;

use crate::ibench::{stb, IbenchConfig, ScenarioBuilder};
use crate::scenario::{GenRule, Scenario};

/// Number of common attributes and per-subclass attributes in each UDP.
const COMMON: usize = 2;
const SUB: usize = 2;

/// Add one sc1 instance under `prefix`. Returns the generalization rule the
/// populator needs.
pub fn add_sc1(b: &mut ScenarioBuilder, prefix: &str) -> GenRule {
    add_generalization(b, prefix, false)
}

/// Add one sc2 instance under `prefix` (sc1 plus a discriminator column).
pub fn add_sc2(b: &mut ScenarioBuilder, prefix: &str) -> GenRule {
    add_generalization(b, prefix, true)
}

fn add_generalization(b: &mut ScenarioBuilder, prefix: &str, discriminator: bool) -> GenRule {
    // Source: single collapsed table.
    let mut src_cols = vec![format!("{prefix}_id")];
    if discriminator {
        src_cols.push(format!("{prefix}_kind"));
    }
    for i in 0..COMMON {
        src_cols.push(format!("{prefix}_c{i}"));
    }
    let p_cols: Vec<String> = (0..SUB).map(|i| format!("{prefix}_p{i}")).collect();
    let n_cols: Vec<String> = (0..SUB).map(|i| format!("{prefix}_n{i}")).collect();
    src_cols.extend(p_cols.iter().cloned());
    src_cols.extend(n_cols.iter().cloned());
    let src = RelationSchema::with_any_columns(format!("{prefix}_Entity"), &src_cols)
        .primary_key(&[&src_cols[0]])
        .expect("key col exists");
    b.source.push(src);

    // Target: shared Entity + one table per subclass, keys linked.
    let mut ent_cols = vec![format!("{prefix}_tid")];
    if discriminator {
        ent_cols.push(format!("{prefix}_tkind"));
    }
    for i in 0..COMMON {
        ent_cols.push(format!("{prefix}_tc{i}"));
    }
    let ent = RelationSchema::with_any_columns(format!("{prefix}_TEntity"), &ent_cols)
        .primary_key(&[&ent_cols[0]])
        .expect("key col exists");

    let person_cols: Vec<String> = std::iter::once(format!("{prefix}_pid"))
        .chain((0..SUB).map(|i| format!("{prefix}_tp{i}")))
        .collect();
    let person = RelationSchema::with_any_columns(format!("{prefix}_Person"), &person_cols)
        .primary_key(&[&person_cols[0]])
        .expect("key col exists")
        .foreign_key(&[&person_cols[0]], format!("{prefix}_TEntity"))
        .expect("key col exists");

    let non_cols: Vec<String> = std::iter::once(format!("{prefix}_nid"))
        .chain((0..SUB).map(|i| format!("{prefix}_tn{i}")))
        .collect();
    let nonperson = RelationSchema::with_any_columns(format!("{prefix}_NonPerson"), &non_cols)
        .primary_key(&[&non_cols[0]])
        .expect("key col exists")
        .foreign_key(&[&non_cols[0]], format!("{prefix}_TEntity"))
        .expect("key col exists");

    b.target.push(ent);
    b.target.push(person);
    b.target.push(nonperson);

    // Correspondences: id to all three keys; common/discriminator into
    // TEntity; subclass attributes into their tables.
    b.sigma
        .add_names(format!("{prefix}_id"), format!("{prefix}_tid"));
    b.sigma
        .add_names(format!("{prefix}_id"), format!("{prefix}_pid"));
    b.sigma
        .add_names(format!("{prefix}_id"), format!("{prefix}_nid"));
    if discriminator {
        b.sigma
            .add_names(format!("{prefix}_kind"), format!("{prefix}_tkind"));
    }
    for i in 0..COMMON {
        b.sigma
            .add_names(format!("{prefix}_c{i}"), format!("{prefix}_tc{i}"));
    }
    for i in 0..SUB {
        b.sigma
            .add_names(format!("{prefix}_p{i}"), format!("{prefix}_tp{i}"));
        b.sigma
            .add_names(format!("{prefix}_n{i}"), format!("{prefix}_tn{i}"));
    }

    GenRule::Generalization {
        relation: format!("{prefix}_Entity"),
        groups: vec![p_cols, n_cols],
        discriminator: discriminator.then(|| format!("{prefix}_kind")),
    }
}

/// Build the **AMB** dataset: the STB primitives plus `udp_invocations`
/// instances of the two generalization UDPs (alternating sc1/sc2), targets
/// keyed (the Fig. 10 configuration).
pub fn amb(cfg: &IbenchConfig, udp_invocations: usize) -> Scenario {
    let base = stb(cfg);
    let mut b = ScenarioBuilder {
        source: base.source.relations().to_vec(),
        target: base.target.relations().to_vec(),
        sigma: base.sigma,
        rules: base.rules,
    };
    let mut rules = Vec::new();
    for i in 0..udp_invocations {
        let rule = if i % 2 == 0 {
            add_sc1(&mut b, &format!("sc1x{i}"))
        } else {
            add_sc2(&mut b, &format!("sc2x{i}"))
        };
        rules.push(rule);
    }
    let mut all_rules = b.rules.clone();
    all_rules.extend(rules);
    let mut s = b.build("AMB");
    s.rules = all_rules;
    s
}

/// Just the UDPs, without the STB base — useful for focused tests.
pub fn amb_only(udp_invocations: usize) -> Scenario {
    let mut b = ScenarioBuilder::default();
    let mut rules = Vec::new();
    for i in 0..udp_invocations {
        let rule = if i % 2 == 0 {
            add_sc1(&mut b, &format!("sc1x{i}"))
        } else {
            add_sc2(&mut b, &format!("sc2x{i}"))
        };
        rules.push(rule);
    }
    let mut s = b.build("AMB-only");
    s.rules = rules;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_core::SedexEngine;
    use sedex_mapping::SpicyEngine;
    use sedex_storage::Value;

    #[test]
    fn sc1_population_alternates_subclasses() {
        let s = amb_only(1);
        let inst = s.populate(10, 1).unwrap();
        let rel = inst.relation("sc1x0_Entity").unwrap();
        for (i, t) in rel.rows().iter().enumerate() {
            let p_null = t.values()[3].is_null(); // first p col (id, c0, c1, p0, p1, n0, n1)
            let n_null = t.values()[5].is_null();
            if i % 2 == 0 {
                assert!(!p_null && n_null, "row {i}: {t}");
            } else {
                assert!(p_null && !n_null, "row {i}: {t}");
            }
        }
    }

    #[test]
    fn sedex_resolves_sc1_without_redundancy() {
        let s = amb_only(1);
        let inst = s.populate(20, 2).unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        // 10 persons + 10 non-persons.
        assert_eq!(out.relation("sc1x0_TEntity").unwrap().len(), 20, "{out}");
        assert_eq!(out.relation("sc1x0_Person").unwrap().len(), 10, "{out}");
        assert_eq!(out.relation("sc1x0_NonPerson").unwrap().len(), 10, "{out}");
        assert_eq!(report.stats.nulls, 0, "{out}");
    }

    #[test]
    fn sc2_discriminator_flows_to_target() {
        let s = amb_only(2); // sc1x0 and sc2x1
        let inst = s.populate(4, 3).unwrap();
        let (out, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let ent = out.relation("sc2x1_TEntity").unwrap();
        assert_eq!(ent.len(), 4);
        // Discriminator column (index 1) populated with kind0/kind1.
        for t in ent.iter() {
            let k = t.values()[1].render().into_owned();
            assert!(k == "kind0" || k == "kind1", "{t}");
        }
    }

    #[test]
    fn spicy_is_redundant_on_amb_sedex_is_not() {
        // The Fig. 10 claim: ++Spicy generates more atoms (nulls and
        // redundant subclass tuples) than SEDEX on AMB.
        let s = amb_only(2);
        let inst = s.populate(16, 4).unwrap();
        let (_, sedex_rep) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
        let (_, spicy_rep) = spicy.run(&inst, &s.target).unwrap();
        assert!(
            spicy_rep.stats.atoms() > sedex_rep.stats.atoms(),
            "spicy {:?} vs sedex {:?}",
            spicy_rep.stats,
            sedex_rep.stats
        );
        assert!(spicy_rep.stats.nulls > sedex_rep.stats.nulls);
        let _ = Value::Null;
    }

    #[test]
    fn amb_composes_with_stb() {
        let cfg = IbenchConfig {
            instances_per_primitive: 1,
            ..IbenchConfig::default()
        };
        let s = amb(&cfg, 2);
        // STB(1 inst): 7 source, 7 target (incl. SH); UDPs add 2×(1 source,
        // 3 target); rules: 1 SharedKeys + 2 generalizations.
        assert_eq!(s.source.len(), 7 + 2);
        assert_eq!(s.target.len(), 7 + 6);
        assert_eq!(s.rules.len(), 3);
        let inst = s.populate(6, 5).unwrap();
        assert_eq!(inst.total_tuples(), 6 * s.source.len());
    }
}
