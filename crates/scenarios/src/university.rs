//! The running example of the paper (Figs. 2–3): the university scenario.
//!
//! Source: `Student(sname*, program, dep→Dep, supervisor→Prof)`,
//! `Prof(pname*, degree, profdep→Dep)`, `Dep(dname*, building)` and the
//! keyless `Registration(sname→Student, course, regdate)`. Target:
//! `Stu(student*, prog, dpt, supervisor)`, `Course(cname*, credit)` and
//! `Reg(student→Stu, cname→Course, date)`.
//!
//! The correspondences are the solid lines of Fig. 2, i.e. exactly the Σ
//! under which Section 4.3's worked distances (0.71 / 0.76 / 1.0) hold.

use sedex_mapping::Correspondences;
use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema, StorageError, Value};

use crate::scenario::Scenario;

/// Build the university scenario.
pub fn scenario() -> Scenario {
    let student =
        RelationSchema::with_any_columns("Student", &["sname", "program", "dep", "supervisor"])
            .primary_key(&["sname"])
            .expect("key col")
            .foreign_key(&["dep"], "Dep")
            .expect("fk col")
            .foreign_key(&["supervisor"], "Prof")
            .expect("fk col");
    let prof = RelationSchema::with_any_columns("Prof", &["pname", "degree", "profdep"])
        .primary_key(&["pname"])
        .expect("key col")
        .foreign_key(&["profdep"], "Dep")
        .expect("fk col");
    let dep = RelationSchema::with_any_columns("Dep", &["dname", "building"])
        .primary_key(&["dname"])
        .expect("key col");
    let reg = RelationSchema::with_any_columns("Registration", &["sname", "course", "regdate"])
        .foreign_key(&["sname"], "Student")
        .expect("fk col");
    let source = Schema::from_relations(vec![student, prof, dep, reg]).expect("valid source");

    let stu = RelationSchema::with_any_columns("Stu", &["student", "prog", "dpt", "supervisor"])
        .primary_key(&["student"])
        .expect("key col");
    let course = RelationSchema::with_any_columns("Course", &["cname", "credit"])
        .primary_key(&["cname"])
        .expect("key col");
    let reg_t = RelationSchema::with_any_columns("Reg", &["student", "cname", "date"])
        .foreign_key(&["student"], "Stu")
        .expect("fk col")
        .foreign_key(&["cname"], "Course")
        .expect("fk col");
    let target = Schema::from_relations(vec![stu, course, reg_t]).expect("valid target");

    let sigma = Correspondences::from_name_pairs([
        ("sname", "student"),
        ("course", "cname"),
        ("regdate", "date"),
        ("program", "prog"),
        ("dep", "dpt"),
    ]);
    Scenario::new("university", source, target, sigma)
}

/// The instance of Fig. 3.
pub fn fig3_instance() -> Result<Instance, StorageError> {
    let s = scenario();
    let mut inst = Instance::new(s.source.clone());
    let p = ConflictPolicy::Reject;
    inst.insert("Dep", sedex_storage::tuple!["d1", "b1"], p)?;
    inst.insert("Dep", sedex_storage::tuple!["d2", "b2"], p)?;
    inst.insert("Prof", sedex_storage::tuple!["prof1", "deg1", "d1"], p)?;
    inst.insert("Prof", sedex_storage::tuple!["prof2", "deg2", "d2"], p)?;
    inst.insert(
        "Student",
        sedex_storage::tuple!["s1", "p1", "d1", "prof1"],
        p,
    )?;
    inst.insert(
        "Student",
        sedex_storage::tuple!["s2", "p2", "d2", Value::Null],
        p,
    )?;
    inst.insert("Registration", sedex_storage::tuple!["s1", "c1", "dt1"], p)?;
    inst.insert("Registration", sedex_storage::tuple!["s2", "c2", "dt2"], p)?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_core::SedexEngine;

    #[test]
    fn fig3_instance_loads() {
        let inst = fig3_instance().unwrap();
        assert_eq!(inst.total_tuples(), 8);
    }

    #[test]
    fn full_running_example() {
        let s = scenario();
        let inst = fig3_instance().unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        // Two students, two registrations; courses have no source data
        // beyond names carried in Reg.
        assert_eq!(out.relation("Stu").unwrap().len(), 2, "{out}");
        assert_eq!(out.relation("Reg").unwrap().len(), 2, "{out}");
        assert_eq!(report.violations, 0);
        // Registration is processed first (tallest tree), so both students
        // flow through it and are skipped later.
        assert!(report.tuples_skipped_seen >= 2, "{report:?}");
    }
}
