//! A plain-text format for complete data-exchange scenarios, and its
//! parser — what the `sedex` CLI consumes.
//!
//! ```text
//! # comments start with '#'
//! [source]
//! Student(sname*, program, dep->Dep, supervisor->Prof)
//! Prof(pname*, degree, profdep->Dep)
//! Dep(dname*, building)
//! Registration(sname->Student, course, regdate)
//!
//! [target]
//! Stu(student*, prog, dpt, supervisor)
//! Course(cname*, credit)
//! Reg(student->Stu, cname->Course, date)
//!
//! [correspondences]
//! sname <-> student            # unqualified: any relation with the column
//! Inst.name <-> Grad.name      # qualified on either side
//!
//! [data]
//! Dep: d1, b1
//! Student: s2, p2, d2, _       # `_` is an SQL null
//!
//! [cfds]
//! Patient.treatment = 'dialysis' => Patient.disease = 'kidney disease'
//! ```
//!
//! Column syntax: `name` (plain), `name*` (primary-key member; several
//! starred columns form a composite key) and `name->Relation` (foreign key
//! into `Relation`'s primary key; combine as `name*->Relation`). Values in
//! `[data]` are text atoms; `_` is a null; integers are detected and typed.

use std::fmt;

use sedex_core::CfdInterpreter;
use sedex_mapping::Correspondences;
use sedex_storage::{ConflictPolicy, Instance, RelationSchema, Schema, Tuple, Value};

use crate::Scenario;

/// A fully parsed scenario file.
#[derive(Debug)]
pub struct ScenarioFile {
    /// Schemas and correspondences.
    pub scenario: Scenario,
    /// The source instance from the `[data]` section.
    pub instance: Instance,
    /// CFDs from the `[cfds]` section.
    pub cfds: CfdInterpreter,
}

/// Parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Offending line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    None,
    Source,
    Target,
    Correspondences,
    Data,
    Cfds,
}

/// Parse a scenario file.
pub fn parse_scenario(text: &str) -> Result<ScenarioFile, ParseError> {
    let mut section = Section::None;
    let mut source_rels: Vec<RelationSchema> = Vec::new();
    let mut target_rels: Vec<RelationSchema> = Vec::new();
    let mut sigma = Correspondences::new();
    // Data lines are collected first: the instance needs the full schema.
    let mut data_lines: Vec<(usize, String)> = Vec::new();
    let mut cfd_lines: Vec<String> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        match line.as_str() {
            "[source]" => section = Section::Source,
            "[target]" => section = Section::Target,
            "[correspondences]" => section = Section::Correspondences,
            "[data]" => section = Section::Data,
            "[cfds]" => section = Section::Cfds,
            _ => match section {
                Section::None => return Err(err(line_no, "content before any [section] header")),
                Section::Source => source_rels.push(parse_relation(&line, line_no)?),
                Section::Target => target_rels.push(parse_relation(&line, line_no)?),
                Section::Correspondences => parse_correspondence(&line, line_no, &mut sigma)?,
                Section::Data => data_lines.push((line_no, line)),
                Section::Cfds => cfd_lines.push(line),
            },
        }
    }

    let source = Schema::from_relations(source_rels)
        .map_err(|e| err(0, format!("invalid source schema: {e}")))?;
    let target = Schema::from_relations(target_rels)
        .map_err(|e| err(0, format!("invalid target schema: {e}")))?;
    let mut instance = Instance::new(source.clone());
    for (line_no, line) in data_lines {
        let (rel, tuple) = parse_data_line(&line, line_no)?;
        instance
            .insert(&rel, tuple, ConflictPolicy::Reject)
            .map_err(|e| err(line_no, e.to_string()))?;
    }
    let cfds = if cfd_lines.is_empty() {
        CfdInterpreter::new()
    } else {
        CfdInterpreter::parse(&cfd_lines.join("\n"))
            .map_err(|e| err(0, format!("in [cfds]: {e}")))?
    };
    Ok(ScenarioFile {
        scenario: Scenario::new("file", source, target, sigma),
        instance,
        cfds,
    })
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside quotes starts a comment.
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `Name(col*, col->Rel, col)`.
fn parse_relation(line: &str, line_no: usize) -> Result<RelationSchema, ParseError> {
    let open = line
        .find('(')
        .ok_or_else(|| err(line_no, "expected `Relation(col, …)`"))?;
    if !line.ends_with(')') {
        return Err(err(line_no, "missing closing `)`"));
    }
    let name = line[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(line_no, format!("invalid relation name `{name}`")));
    }
    let body = &line[open + 1..line.len() - 1];
    let mut cols: Vec<String> = Vec::new();
    let mut pk: Vec<String> = Vec::new();
    let mut fks: Vec<(String, String)> = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(err(line_no, "empty column"));
        }
        let (col_spec, fk_target) = match part.split_once("->") {
            Some((c, t)) => (c.trim(), Some(t.trim().to_owned())),
            None => (part, None),
        };
        let (col, keyed) = match col_spec.strip_suffix('*') {
            Some(c) => (c.trim(), true),
            None => (col_spec, false),
        };
        if col.is_empty() || !col.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(line_no, format!("invalid column name `{col}`")));
        }
        cols.push(col.to_owned());
        if keyed {
            pk.push(col.to_owned());
        }
        if let Some(t) = fk_target {
            if t.is_empty() {
                return Err(err(line_no, "empty foreign-key target"));
            }
            fks.push((col.to_owned(), t));
        }
    }
    let mut rel = RelationSchema::with_any_columns(name, &cols);
    if !pk.is_empty() {
        rel = rel
            .primary_key(&pk)
            .map_err(|e| err(line_no, e.to_string()))?;
    }
    for (col, t) in fks {
        rel = rel
            .foreign_key(&[&col], t)
            .map_err(|e| err(line_no, e.to_string()))?;
    }
    Ok(rel)
}

/// `a <-> b`, optionally qualified as `Rel.col` on either side.
fn parse_correspondence(
    line: &str,
    line_no: usize,
    sigma: &mut Correspondences,
) -> Result<(), ParseError> {
    let (l, r) = line
        .split_once("<->")
        .ok_or_else(|| err(line_no, "expected `source <-> target`"))?;
    let parse_ref = |s: &str| -> Result<(Option<String>, String), ParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(err(line_no, "empty correspondence side"));
        }
        Ok(match s.split_once('.') {
            Some((rel, col)) => (Some(rel.trim().to_owned()), col.trim().to_owned()),
            None => (None, s.to_owned()),
        })
    };
    let (srel, scol) = parse_ref(l)?;
    let (trel, tcol) = parse_ref(r)?;
    sigma.add(sedex_mapping::Correspondence {
        source: sedex_mapping::PropertyRef {
            relation: srel,
            column: scol,
        },
        target: sedex_mapping::PropertyRef {
            relation: trel,
            column: tcol,
        },
    });
    Ok(())
}

/// Parse one `[data]`-section line: `Relation: v1, v2, _` — `_` is null;
/// integers are typed as ints; single quotes protect commas and `#`.
///
/// Public because the `sedex-service` wire protocol reuses exactly this
/// syntax for its `PUSH`/`FEED` commands.
pub fn parse_data_line(line: &str, line_no: usize) -> Result<(String, Tuple), ParseError> {
    let (rel, rest) = line
        .split_once(':')
        .ok_or_else(|| err(line_no, "expected `Relation: v1, v2, …`"))?;
    let values: Vec<Value> = rest
        .split(',')
        .map(|v| {
            let v = v.trim();
            if v == "_" {
                Value::Null
            } else if let Ok(i) = v.parse::<i64>() {
                Value::Int(i)
            } else {
                let unquoted = v
                    .strip_prefix('\'')
                    .and_then(|s| s.strip_suffix('\''))
                    .unwrap_or(v);
                Value::text(unquoted)
            }
        })
        .collect();
    Ok((rel.trim().to_owned(), Tuple::new(values)))
}

/// Render a scenario file's skeleton for a `Scenario` (schemas and
/// correspondences; no data) — handy for exporting generated scenarios.
pub fn render_scenario(s: &Scenario) -> String {
    let mut out = String::new();
    out.push_str("[source]\n");
    for r in s.source.relations() {
        out.push_str(&render_relation(r));
    }
    out.push_str("\n[target]\n");
    for r in s.target.relations() {
        out.push_str(&render_relation(r));
    }
    out.push_str("\n[correspondences]\n");
    for c in s.sigma.iter() {
        out.push_str(&format!("{} <-> {}\n", c.source, c.target));
    }
    out
}

/// Render an instance as a `[data]` section body (one `Relation: …` line
/// per tuple, `_` for nulls). Labeled nulls render as `_` too — the format
/// has no marked-null syntax, and source instances never carry them.
pub fn render_data(inst: &Instance) -> String {
    let mut out = String::new();
    for (name, rel) in inst.relations() {
        for t in rel.iter() {
            let vals: Vec<String> = t
                .values()
                .iter()
                .map(|v| match v {
                    Value::Null | Value::Labeled(_) => "_".to_owned(),
                    Value::Int(i) => i.to_string(),
                    other => {
                        let s = other.render().into_owned();
                        if s.contains(',') || s.contains('#') || s.trim() != s {
                            format!("'{s}'")
                        } else {
                            s
                        }
                    }
                })
                .collect();
            out.push_str(&format!(
                "{name}: {}
",
                vals.join(", ")
            ));
        }
    }
    out
}

fn render_relation(r: &RelationSchema) -> String {
    let cols: Vec<String> = r
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut s = c.name.clone();
            if r.primary_key.contains(&i) {
                s.push('*');
            }
            if let Some(fk) = r
                .foreign_keys
                .iter()
                .find(|f| f.columns.first() == Some(&i))
            {
                s.push_str(&format!("->{}", fk.ref_relation));
            }
            s
        })
        .collect();
    format!("{}({})\n", r.name, cols.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIVERSITY: &str = r#"
# the running example of the paper
[source]
Student(sname*, program, dep->Dep, supervisor->Prof)
Prof(pname*, degree, profdep->Dep)
Dep(dname*, building)
Registration(sname->Student, course, regdate)

[target]
Stu(student*, prog, dpt, supervisor)
Course(cname*, credit)
Reg(student->Stu, cname->Course, date)

[correspondences]
sname <-> student
course <-> cname
regdate <-> date
program <-> prog
dep <-> dpt

[data]
Dep: d1, b1
Dep: d2, b2
Prof: prof1, deg1, d1
Student: s1, p1, d1, prof1
Student: s2, p2, d2, _
Registration: s1, c1, dt1
"#;

    #[test]
    fn parses_the_running_example() {
        let f = parse_scenario(UNIVERSITY).unwrap();
        assert_eq!(f.scenario.source.len(), 4);
        assert_eq!(f.scenario.target.len(), 3);
        assert_eq!(f.scenario.sigma.len(), 5);
        assert_eq!(f.instance.total_tuples(), 6);
        // The null parsed as a null.
        let s2 = f
            .instance
            .relation("Student")
            .unwrap()
            .lookup_pk(&[Value::text("s2")])
            .unwrap();
        assert!(s2.values()[3].is_null());
        // FK resolved to Dep's key.
        let student = f.scenario.source.relation("Student").unwrap();
        assert_eq!(student.foreign_keys.len(), 2);
    }

    #[test]
    fn parsed_scenario_exchanges_like_the_builtin_one() {
        use sedex_core::SedexEngine;
        let f = parse_scenario(UNIVERSITY).unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&f.instance, &f.scenario.target, &f.scenario.sigma)
            .unwrap();
        assert_eq!(out.relation("Stu").unwrap().len(), 2);
        assert_eq!(out.relation("Reg").unwrap().len(), 1);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn qualified_correspondences_and_integers() {
        let text = r#"
[source]
Inst(name*, stId, empId)
[target]
Grad(gname*, gid)
Prof(pname*, pid)
[correspondences]
Inst.name <-> Grad.gname
Inst.name <-> Prof.pname
stId <-> gid
empId <-> pid
[data]
Inst: bob, 1234, _
"#;
        let f = parse_scenario(text).unwrap();
        assert_eq!(f.scenario.sigma.len(), 4);
        let t = f.instance.relation("Inst").unwrap().row(0).unwrap();
        assert_eq!(t.values()[1], Value::Int(1234));
    }

    #[test]
    fn cfd_section_parses() {
        let text = r#"
[source]
P(k*, t, d)
[target]
Q(qk*, qd)
[correspondences]
k <-> qk
d <-> qd
[cfds]
P.t = 'dialysis' => P.d = 'kidney disease'
[data]
P: p1, dialysis, _
"#;
        let f = parse_scenario(text).unwrap();
        assert_eq!(f.cfds.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_scenario("Student(a)").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("section"));

        let e = parse_scenario("[source]\nStudent(a").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse_scenario("[source]\nR(a)\n[data]\nR 1").unwrap_err();
        assert_eq!(e.line, 4);

        let e = parse_scenario("[source]\nR(a)\n[data]\nNope: 1").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("unknown relation"));
    }

    #[test]
    fn comments_and_quotes() {
        let text = "[source]\nR(a*)\n[target]\nT(b*)\n[correspondences]\na <-> b\n[data]\nR: 'has # inside'  # trailing comment\n";
        let f = parse_scenario(text).unwrap();
        let t = f.instance.relation("R").unwrap().row(0).unwrap();
        assert_eq!(t.values()[0], Value::text("has # inside"));
    }

    #[test]
    fn render_data_round_trips() {
        let f = parse_scenario(UNIVERSITY).unwrap();
        let text = format!(
            "{}\n[data]\n{}",
            render_scenario(&f.scenario),
            render_data(&f.instance)
        );
        let f2 = parse_scenario(&text).unwrap();
        assert_eq!(f.instance.total_tuples(), f2.instance.total_tuples());
        assert_eq!(f.instance.stats(), f2.instance.stats());
    }

    #[test]
    fn render_round_trips_structure() {
        let f = parse_scenario(UNIVERSITY).unwrap();
        let rendered = render_scenario(&f.scenario);
        // Rendered text re-parses to an identical schema pair.
        let with_header = format!("{rendered}\n[data]\n");
        let f2 = parse_scenario(&with_header).unwrap();
        assert_eq!(f.scenario.source, f2.scenario.source);
        assert_eq!(f.scenario.target, f2.scenario.target);
        assert_eq!(f.scenario.sigma.len(), f2.scenario.sigma.len());
    }
}
