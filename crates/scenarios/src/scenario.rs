//! The common data-exchange scenario shape and its populator.

use std::collections::{HashMap, HashSet};

use sedex_mapping::{Correspondences, Egd};
use sedex_storage::{ConflictPolicy, Instance, Schema, StorageError, Tuple, Value};

use crate::datagen::DataGen;

/// Special population rules a scenario may carry.
#[derive(Debug, Clone)]
pub enum GenRule {
    /// The generalization pattern of the AMB UDPs (Section 5.1): rows of
    /// `relation` alternate between subclasses; each row keeps the columns
    /// of its own group and nulls the other groups' columns. With a
    /// `discriminator`, that column is set to the group's name (`sc2`).
    Generalization {
        /// The collapsed source relation.
        relation: String,
        /// Column groups, one per subclass.
        groups: Vec<Vec<String>>,
        /// Optional explicit subclass indicator column.
        discriminator: Option<String>,
    },
    /// Inject SQL nulls into the given column with the given probability —
    /// used to create incomplete sources.
    NullRate {
        /// Relation to affect.
        relation: String,
        /// Column to null out.
        column: String,
        /// Probability of a null.
        rate: f64,
    },
    /// Key sharing across relations (iBench's "sharing of relations across
    /// primitives"): `relation.column` takes its values from
    /// `from_relation`'s primary keys, pairing rows one-to-one — the two
    /// relations then describe the *same entities*, so complementary
    /// mappings into a shared target produce mergeable partial tuples.
    SharedKeys {
        /// Relation whose column is overridden.
        relation: String,
        /// The (key) column taking shared values.
        column: String,
        /// Relation whose primary keys are reused.
        from_relation: String,
    },
}

/// A complete data-exchange scenario: schemas, correspondences and
/// population rules.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (e.g. `"STB"`, `"s25"`, `"VP"`).
    pub name: String,
    /// Source schema.
    pub source: Schema,
    /// Target schema.
    pub target: Schema,
    /// Property correspondences Σ.
    pub sigma: Correspondences,
    /// Population rules.
    pub rules: Vec<GenRule>,
}

impl Scenario {
    /// A scenario with no special population rules.
    pub fn new(
        name: impl Into<String>,
        source: Schema,
        target: Schema,
        sigma: Correspondences,
    ) -> Self {
        Scenario {
            name: name.into(),
            source,
            target,
            sigma,
            rules: Vec::new(),
        }
    }

    /// The target key egds `Γ`.
    pub fn target_egds(&self) -> Vec<Egd> {
        Egd::key_egds(&self.target)
    }

    /// Populate a source instance with `tuples_per_relation` rows per
    /// relation, deterministically from `seed`.
    ///
    /// Relations are filled in foreign-key dependency order so every FK
    /// value references an existing key; generalization and null rules are
    /// applied per row.
    pub fn populate(
        &self,
        tuples_per_relation: usize,
        seed: u64,
    ) -> Result<Instance, StorageError> {
        let mut gen = DataGen::new(seed ^ fxhash(&self.name));
        let mut instance = Instance::new(self.source.clone());
        let mut order = dependency_order(&self.source);
        // SharedKeys rules add ordering constraints the FK graph doesn't
        // know about: the key-providing relation must be populated first.
        for r in &self.rules {
            if let GenRule::SharedKeys {
                relation,
                from_relation,
                ..
            } = r
            {
                let from = order.iter().position(|n| n == from_relation);
                let to = order.iter().position(|n| n == relation);
                if let (Some(f), Some(t)) = (from, to) {
                    if f > t {
                        let moved = order.remove(f);
                        order.insert(t, moved);
                    }
                }
            }
        }
        // Keys generated per relation, for FK targets.
        let mut keys: HashMap<String, Vec<Value>> = HashMap::new();

        for rel_name in order {
            let rel = self.source.relation_or_err(&rel_name)?.clone();
            let gen_rule = self.rules.iter().find(
                |r| matches!(r, GenRule::Generalization { relation, .. } if relation == &rel_name),
            );
            let mut my_keys = Vec::with_capacity(tuples_per_relation);
            for i in 0..tuples_per_relation {
                let mut vals: Vec<Value> = Vec::with_capacity(rel.arity());
                for (j, col) in rel.columns.iter().enumerate() {
                    // Shared-key rule takes precedence: pair with the
                    // provider relation's keys one-to-one.
                    let shared = self.rules.iter().find_map(|r| match r {
                        GenRule::SharedKeys {
                            relation,
                            column,
                            from_relation,
                        } if relation == &rel_name && column == &col.name => Some(from_relation),
                        _ => None,
                    });
                    if let Some(from) = shared {
                        let v = match keys.get(from.as_str()) {
                            Some(ks) if !ks.is_empty() => ks[i % ks.len()].clone(),
                            _ => gen.key(&rel_name, i),
                        };
                        vals.push(v);
                        continue;
                    }
                    // FK column: reference an existing key of the target.
                    // Key-to-key links (the FK column is the relation's own
                    // key, as in fusion/partition scenarios) pair rows
                    // one-to-one; plain FKs pick a random referenced key.
                    let fk = rel
                        .foreign_keys
                        .iter()
                        .find(|f| f.columns.first() == Some(&j));
                    let v = if let Some(fk) = fk {
                        match keys.get(&fk.ref_relation) {
                            Some(ks) if !ks.is_empty() => {
                                if rel.primary_key.contains(&j) {
                                    ks[i % ks.len()].clone()
                                } else {
                                    ks[gen.pick(ks.len())].clone()
                                }
                            }
                            _ => Value::Null,
                        }
                    } else if rel.primary_key.contains(&j) {
                        gen.key(&rel_name, i)
                    } else {
                        gen.value(&col.name, i)
                    };
                    vals.push(v);
                }
                // Generalization rule: null out the other groups' columns.
                if let Some(GenRule::Generalization {
                    groups,
                    discriminator,
                    ..
                }) = gen_rule
                {
                    let g = i % groups.len();
                    let own: HashSet<&str> = groups[g].iter().map(String::as_str).collect();
                    let others: HashSet<&str> = groups
                        .iter()
                        .enumerate()
                        .filter(|&(gi, _)| gi != g)
                        .flat_map(|(_, cols)| cols.iter().map(String::as_str))
                        .filter(|c| !own.contains(c))
                        .collect();
                    for (j, col) in rel.columns.iter().enumerate() {
                        if others.contains(col.name.as_str()) && !rel.primary_key.contains(&j) {
                            vals[j] = Value::Null;
                        }
                    }
                    if let Some(d) = discriminator {
                        if let Some(j) = rel.column_index(d) {
                            vals[j] = Value::Text(format!("kind{g}"));
                        }
                    }
                }
                // Null-rate rules.
                for r in &self.rules {
                    if let GenRule::NullRate {
                        relation,
                        column,
                        rate,
                    } = r
                    {
                        if relation == &rel_name {
                            if let Some(j) = rel.column_index(column) {
                                if !rel.primary_key.contains(&j) && gen.chance(*rate) {
                                    vals[j] = Value::Null;
                                }
                            }
                        }
                    }
                }
                if !rel.primary_key.is_empty() {
                    my_keys.push(Tuple::new(vals.clone()).project(&rel.primary_key)[0].clone());
                }
                instance.insert(&rel_name, Tuple::new(vals), ConflictPolicy::Skip)?;
            }
            keys.insert(rel_name, my_keys);
        }
        Ok(instance)
    }
}

/// Source relations ordered so referenced relations come before referencing
/// ones (Kahn's algorithm; cycles fall back to declaration order).
pub fn dependency_order(schema: &Schema) -> Vec<String> {
    let names: Vec<&str> = schema.relation_names().collect();
    let idx: HashMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = names.len();
    let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, rel) in schema.relations().iter().enumerate() {
        for fk in &rel.foreign_keys {
            if let Some(&j) = idx.get(fk.ref_relation.as_str()) {
                if j != i {
                    deps[i].insert(j);
                }
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    loop {
        let mut progressed = false;
        for i in 0..n {
            if !placed[i] && deps[i].iter().all(|&j| placed[j]) {
                placed[i] = true;
                order.push(names[i].to_owned());
                progressed = true;
            }
        }
        if order.len() == n {
            break;
        }
        if !progressed {
            // Cycle: append the rest in declaration order.
            for i in 0..n {
                if !placed[i] {
                    placed[i] = true;
                    order.push(names[i].to_owned());
                }
            }
            break;
        }
    }
    order
}

/// Tiny deterministic string hash (scenario-name → seed perturbation).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_storage::RelationSchema;

    fn two_level() -> Scenario {
        let b = RelationSchema::with_any_columns("B", &["bk", "bv"])
            .primary_key(&["bk"])
            .unwrap();
        let a = RelationSchema::with_any_columns("A", &["ak", "av", "bref"])
            .primary_key(&["ak"])
            .unwrap()
            .foreign_key(&["bref"], "B")
            .unwrap();
        let source = Schema::from_relations(vec![a, b]).unwrap();
        let target = Schema::new();
        Scenario::new("test", source, target, Correspondences::new())
    }

    #[test]
    fn dependency_order_puts_referenced_first() {
        let s = two_level();
        let order = dependency_order(&s.source);
        assert_eq!(order, vec!["B".to_string(), "A".to_string()]);
    }

    #[test]
    fn populate_produces_valid_fks() {
        let s = two_level();
        let inst = s.populate(50, 1).unwrap();
        assert_eq!(inst.relation("A").unwrap().len(), 50);
        assert_eq!(inst.relation("B").unwrap().len(), 50);
        // Every A.bref dereferences.
        let a_rel = inst.relation("A").unwrap();
        for (i, t) in a_rel.rows().iter().enumerate() {
            assert!(
                inst.deref_fk("A", 0, t).is_some(),
                "row {i} has dangling FK: {t}"
            );
        }
    }

    #[test]
    fn populate_is_deterministic() {
        let s = two_level();
        let i1 = s.populate(20, 9).unwrap();
        let i2 = s.populate(20, 9).unwrap();
        assert_eq!(
            i1.relation("A").unwrap().rows(),
            i2.relation("A").unwrap().rows()
        );
    }

    #[test]
    fn generalization_rule_nulls_other_groups() {
        let e = RelationSchema::with_any_columns("E", &["id", "common", "p1", "n1"])
            .primary_key(&["id"])
            .unwrap();
        let source = Schema::from_relations(vec![e]).unwrap();
        let mut s = Scenario::new("g", source, Schema::new(), Correspondences::new());
        s.rules.push(GenRule::Generalization {
            relation: "E".into(),
            groups: vec![vec!["p1".into()], vec!["n1".into()]],
            discriminator: None,
        });
        let inst = s.populate(10, 3).unwrap();
        for (i, t) in inst.relation("E").unwrap().rows().iter().enumerate() {
            let (p1, n1) = (&t.values()[2], &t.values()[3]);
            if i % 2 == 0 {
                assert!(!p1.is_null() && n1.is_null(), "row {i}: {t}");
            } else {
                assert!(p1.is_null() && !n1.is_null(), "row {i}: {t}");
            }
        }
    }

    #[test]
    fn discriminator_set_per_group() {
        let e = RelationSchema::with_any_columns("E", &["id", "kind", "p1", "n1"])
            .primary_key(&["id"])
            .unwrap();
        let source = Schema::from_relations(vec![e]).unwrap();
        let mut s = Scenario::new("g2", source, Schema::new(), Correspondences::new());
        s.rules.push(GenRule::Generalization {
            relation: "E".into(),
            groups: vec![vec!["p1".into()], vec!["n1".into()]],
            discriminator: Some("kind".into()),
        });
        let inst = s.populate(4, 3).unwrap();
        let kinds: Vec<String> = inst
            .relation("E")
            .unwrap()
            .rows()
            .iter()
            .map(|t| t.values()[1].render().into_owned())
            .collect();
        assert_eq!(kinds, vec!["kind0", "kind1", "kind0", "kind1"]);
    }

    #[test]
    fn null_rate_rule_applies() {
        let r = RelationSchema::with_any_columns("R", &["k", "v"])
            .primary_key(&["k"])
            .unwrap();
        let source = Schema::from_relations(vec![r]).unwrap();
        let mut s = Scenario::new("n", source, Schema::new(), Correspondences::new());
        s.rules.push(GenRule::NullRate {
            relation: "R".into(),
            column: "v".into(),
            rate: 1.0,
        });
        let inst = s.populate(5, 3).unwrap();
        assert!(inst
            .relation("R")
            .unwrap()
            .rows()
            .iter()
            .all(|t| t.values()[1].is_null()));
    }
}
