//! The STBenchmark basic mapping scenarios (Figs. 13 and 15).
//!
//! The paper runs SEDEX on eleven basic STBenchmark scenarios (self-join
//! excluded as unsupported): Copy (CP), Constant Value Generation (CV),
//! Horizontal Partitioning (HP), Surrogate Key Assignment (SK), Vertical
//! Partitioning (VP), Unnesting (UN), Nesting (NE), Denormalization (DE),
//! Keys/Object Fusion (KO) and Atomic Value Management (AV).
//!
//! Modelling notes (each preserves the scenario's *exchange* shape, which is
//! what Figs. 13/15 measure):
//!
//! * **CV** generates target constants via mapping expressions; constants
//!   are orthogonal to tree matching, so the unmatched target column simply
//!   stays empty (like an existential).
//! * **UN/NE** unnest/nest set-valued attributes; relationally, UN is a
//!   parent/child source flattened into one target and NE the reverse with
//!   surrogate link keys.
//! * **AV** applies value-level functions (concat/split); value transforms
//!   are orthogonal to the exchange mechanics, so AV keeps the copy shape
//!   with renamed columns.

use sedex_storage::RelationSchema;

use crate::ibench::{add_cp, add_hp, add_su, add_vp, ScenarioBuilder};
use crate::scenario::Scenario;

/// The ten scenario kinds, in the order of Fig. 13's x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicKind {
    /// Copy.
    Cp,
    /// Constant value generation.
    Cv,
    /// Horizontal partitioning.
    Hp,
    /// Surrogate key assignment.
    Sk,
    /// Vertical partitioning.
    Vp,
    /// Unnesting.
    Un,
    /// Nesting.
    Ne,
    /// Denormalization.
    De,
    /// Keys/object fusion.
    Ko,
    /// Atomic value management.
    Av,
}

impl BasicKind {
    /// All ten kinds in display order.
    pub fn all() -> [BasicKind; 10] {
        [
            BasicKind::Cp,
            BasicKind::Cv,
            BasicKind::Hp,
            BasicKind::Sk,
            BasicKind::Vp,
            BasicKind::Un,
            BasicKind::Ne,
            BasicKind::De,
            BasicKind::Ko,
            BasicKind::Av,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            BasicKind::Cp => "CP",
            BasicKind::Cv => "CV",
            BasicKind::Hp => "HP",
            BasicKind::Sk => "SK",
            BasicKind::Vp => "VP",
            BasicKind::Un => "UN",
            BasicKind::Ne => "NE",
            BasicKind::De => "DE",
            BasicKind::Ko => "KO",
            BasicKind::Av => "AV",
        }
    }
}

/// Build one basic scenario of the given kind (4 source attributes, keyed
/// targets).
pub fn basic(kind: BasicKind) -> Scenario {
    let mut b = ScenarioBuilder::default();
    let p = kind.name().to_lowercase();
    match kind {
        BasicKind::Cp => add_cp(&mut b, &p, 4, true),
        BasicKind::Cv => add_cv(&mut b, &p, 4),
        BasicKind::Hp => add_hp(&mut b, &p, 4, true),
        BasicKind::Sk => add_su(&mut b, &p, 4, true),
        BasicKind::Vp => add_vp(&mut b, &p, 5, true),
        BasicKind::Un => add_un(&mut b, &p, 2, 2),
        BasicKind::Ne => add_ne(&mut b, &p, 2, 2),
        BasicKind::De => add_de(&mut b, &p, 2, 2),
        BasicKind::Ko => add_ko(&mut b, &p, 2, 2),
        BasicKind::Av => add_av(&mut b, &p, 4),
    }
    b.build(kind.name())
}

/// CV — copy plus a target column filled by a constant expression (no
/// correspondence: it stays empty under both systems).
pub fn add_cv(b: &mut ScenarioBuilder, prefix: &str, attrs: usize) {
    let src_cols: Vec<String> = (0..attrs).map(|i| format!("{prefix}_a{i}")).collect();
    let src = RelationSchema::with_any_columns(format!("{prefix}_R"), &src_cols)
        .primary_key(&[&src_cols[0]])
        .expect("key col exists");
    let mut tgt_cols: Vec<String> = (0..attrs).map(|i| format!("{prefix}_b{i}")).collect();
    tgt_cols.push(format!("{prefix}_const"));
    let tgt = RelationSchema::with_any_columns(format!("{prefix}_T"), &tgt_cols)
        .primary_key(&[&tgt_cols[0]])
        .expect("key col exists");
    for (s, t) in src_cols.iter().zip(&tgt_cols[..attrs]) {
        b.sigma.add_names(s.clone(), t.clone());
    }
    b.source.push(src);
    b.target.push(tgt);
}

/// UN — unnesting: source parent/child (the "nested set") flattened into a
/// single target relation.
pub fn add_un(b: &mut ScenarioBuilder, prefix: &str, parent_attrs: usize, child_attrs: usize) {
    let p_cols: Vec<String> = std::iter::once(format!("{prefix}_pk"))
        .chain((0..parent_attrs).map(|i| format!("{prefix}_pa{i}")))
        .collect();
    let parent = RelationSchema::with_any_columns(format!("{prefix}_P"), &p_cols)
        .primary_key(&[&p_cols[0]])
        .expect("key col exists");
    let c_cols: Vec<String> = [format!("{prefix}_ck"), format!("{prefix}_pref")]
        .into_iter()
        .chain((0..child_attrs).map(|i| format!("{prefix}_ca{i}")))
        .collect();
    let child = RelationSchema::with_any_columns(format!("{prefix}_C"), &c_cols)
        .primary_key(&[&c_cols[0]])
        .expect("key col exists")
        .foreign_key(&[&c_cols[1]], format!("{prefix}_P"))
        .expect("fk col exists");
    let flat_cols: Vec<String> = std::iter::once(format!("{prefix}_fk"))
        .chain((0..parent_attrs).map(|i| format!("{prefix}_fpa{i}")))
        .chain((0..child_attrs).map(|i| format!("{prefix}_fca{i}")))
        .collect();
    let flat = RelationSchema::with_any_columns(format!("{prefix}_Flat"), &flat_cols)
        .primary_key(&[&flat_cols[0]])
        .expect("key col exists");
    b.sigma.add_names(c_cols[0].clone(), flat_cols[0].clone());
    for i in 0..parent_attrs {
        b.sigma
            .add_names(format!("{prefix}_pa{i}"), format!("{prefix}_fpa{i}"));
    }
    for i in 0..child_attrs {
        b.sigma
            .add_names(format!("{prefix}_ca{i}"), format!("{prefix}_fca{i}"));
    }
    b.source.push(parent);
    b.source.push(child);
    b.target.push(flat);
}

/// NE — nesting: a flat source split into target parent/child linked by a
/// surrogate key.
pub fn add_ne(b: &mut ScenarioBuilder, prefix: &str, parent_attrs: usize, child_attrs: usize) {
    let f_cols: Vec<String> = std::iter::once(format!("{prefix}_k"))
        .chain((0..parent_attrs).map(|i| format!("{prefix}_pa{i}")))
        .chain((0..child_attrs).map(|i| format!("{prefix}_ca{i}")))
        .collect();
    let flat = RelationSchema::with_any_columns(format!("{prefix}_F"), &f_cols)
        .primary_key(&[&f_cols[0]])
        .expect("key col exists");
    let tp_cols: Vec<String> = std::iter::once(format!("{prefix}_tpk"))
        .chain((0..parent_attrs).map(|i| format!("{prefix}_tpa{i}")))
        .collect();
    let tparent = RelationSchema::with_any_columns(format!("{prefix}_TP"), &tp_cols)
        .primary_key(&[&tp_cols[0]])
        .expect("key col exists");
    let tc_cols: Vec<String> = [format!("{prefix}_tck"), format!("{prefix}_tpref")]
        .into_iter()
        .chain((0..child_attrs).map(|i| format!("{prefix}_tca{i}")))
        .collect();
    let tchild = RelationSchema::with_any_columns(format!("{prefix}_TC"), &tc_cols)
        .primary_key(&[&tc_cols[0]])
        .expect("key col exists")
        .foreign_key(&[&tc_cols[1]], format!("{prefix}_TP"))
        .expect("fk col exists");
    // The flat key keys the child; the parent key is a pure surrogate.
    b.sigma.add_names(f_cols[0].clone(), tc_cols[0].clone());
    for i in 0..parent_attrs {
        b.sigma
            .add_names(format!("{prefix}_pa{i}"), format!("{prefix}_tpa{i}"));
    }
    for i in 0..child_attrs {
        b.sigma
            .add_names(format!("{prefix}_ca{i}"), format!("{prefix}_tca{i}"));
    }
    b.source.push(flat);
    b.target.push(tparent);
    b.target.push(tchild);
}

/// DE — denormalization: parent/child source joined into one wide target
/// (same exchange shape as UN; kept separate to mirror the paper's list and
/// to allow different sizing).
pub fn add_de(b: &mut ScenarioBuilder, prefix: &str, parent_attrs: usize, child_attrs: usize) {
    add_un(b, prefix, parent_attrs, child_attrs);
}

/// KO — keys/object fusion: two source relations sharing a key are fused
/// into one target object.
pub fn add_ko(b: &mut ScenarioBuilder, prefix: &str, attrs1: usize, attrs2: usize) {
    let r1_cols: Vec<String> = std::iter::once(format!("{prefix}_k1"))
        .chain((0..attrs1).map(|i| format!("{prefix}_a{i}")))
        .collect();
    // R1 references R2 key-to-key: the halves of one fused object.
    let r2_cols: Vec<String> = std::iter::once(format!("{prefix}_k2"))
        .chain((0..attrs2).map(|i| format!("{prefix}_b{i}")))
        .collect();
    let r1 = RelationSchema::with_any_columns(format!("{prefix}_R1"), &r1_cols)
        .primary_key(&[&r1_cols[0]])
        .expect("key col exists")
        .foreign_key(&[&r1_cols[0]], format!("{prefix}_R2"))
        .expect("key col exists");
    let r2 = RelationSchema::with_any_columns(format!("{prefix}_R2"), &r2_cols)
        .primary_key(&[&r2_cols[0]])
        .expect("key col exists");
    let t_cols: Vec<String> = std::iter::once(format!("{prefix}_tk"))
        .chain((0..attrs1).map(|i| format!("{prefix}_ta{i}")))
        .chain((0..attrs2).map(|i| format!("{prefix}_tb{i}")))
        .collect();
    let t = RelationSchema::with_any_columns(format!("{prefix}_T"), &t_cols)
        .primary_key(&[&t_cols[0]])
        .expect("key col exists");
    b.sigma.add_names(r1_cols[0].clone(), t_cols[0].clone());
    for i in 0..attrs1 {
        b.sigma
            .add_names(format!("{prefix}_a{i}"), format!("{prefix}_ta{i}"));
    }
    for i in 0..attrs2 {
        b.sigma
            .add_names(format!("{prefix}_b{i}"), format!("{prefix}_tb{i}"));
    }
    b.source.push(r1);
    b.source.push(r2);
    b.target.push(t);
}

/// AV — atomic value management: value-level transforms; exchange shape is a
/// copy with renamed columns.
pub fn add_av(b: &mut ScenarioBuilder, prefix: &str, attrs: usize) {
    add_cp(b, prefix, attrs, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_core::SedexEngine;

    #[test]
    fn all_ten_scenarios_build_and_run() {
        for kind in BasicKind::all() {
            let s = basic(kind);
            let inst = s.populate(20, 11).unwrap();
            let (out, report) = SedexEngine::new()
                .exchange(&inst, &s.target, &s.sigma)
                .unwrap();
            assert!(
                out.total_tuples() > 0,
                "{}: empty target\n{out}",
                kind.name()
            );
            assert!(
                report.tuples_unmatched == 0,
                "{}: {} unmatched tuples",
                kind.name(),
                report.tuples_unmatched
            );
        }
    }

    #[test]
    fn un_flattens_parent_into_child_rows() {
        let s = basic(BasicKind::Un);
        let inst = s.populate(10, 2).unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let flat = out.relation("un_Flat").unwrap();
        // Ten child rows, each fully flattened; parents not referenced by
        // any child are still preserved as partial rows with a surrogate
        // key (entity preservation — SEDEX never drops source entities).
        let child_rows: Vec<_> = flat
            .iter()
            .filter(|t| t.values()[0].is_constant())
            .collect();
        assert_eq!(child_rows.len(), 10, "{out}");
        for t in &child_rows {
            assert_eq!(t.nulls(), 0, "{t}");
        }
        // Parents reached through children were skipped, not re-emitted.
        assert!(report.tuples_skipped_seen > 0);
    }

    #[test]
    fn ne_builds_linked_parent_child() {
        let s = basic(BasicKind::Ne);
        let inst = s.populate(8, 3).unwrap();
        let (out, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let tp = out.relation("ne_TP").unwrap();
        let tc = out.relation("ne_TC").unwrap();
        assert_eq!(tc.len(), 8, "{out}");
        assert_eq!(tp.len(), 8, "{out}");
        // Each child's link matches some parent surrogate.
        for c in tc.iter() {
            let link = &c.values()[1];
            assert!(
                tp.iter().any(|p| &p.values()[0] == link),
                "dangling link {c}"
            );
        }
    }

    #[test]
    fn ko_fuses_two_relations() {
        let s = basic(BasicKind::Ko);
        let inst = s.populate(12, 4).unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let t = out.relation("ko_T").unwrap();
        assert_eq!(t.len(), 12, "{out}");
        assert_eq!(report.stats.nulls, 0, "{out}");
        // Fused arity: key + 2 + 2 attributes, all constants.
        assert_eq!(report.stats.constants, 12 * 5);
    }

    #[test]
    fn cv_leaves_constant_column_empty() {
        let s = basic(BasicKind::Cv);
        let inst = s.populate(5, 5).unwrap();
        let (out, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let t = out.relation("cv_T").unwrap();
        assert_eq!(t.len(), 5);
        for row in t.iter() {
            assert!(row.values().last().unwrap().is_null());
        }
    }
}
