//! A tiny deterministic PRNG (xoshiro256++ seeded via SplitMix64).
//!
//! The workspace builds fully offline, so the scenario generators cannot
//! pull in the `rand` crate. All they need is a fast, seedable,
//! reproducible source of integers and booleans — this module provides
//! exactly that, with the same determinism guarantee the generators
//! document: identical seeds produce identical instances on every
//! platform and every run.

/// A seedable deterministic random-number generator.
///
/// The stream is fixed forever by the seed: scenario population and
/// iBench-style schema generation rely on this for reproducibility.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed the generator. Mirrors `rand`'s `SeedableRng::seed_from_u64`
    /// shape: the 64-bit seed is expanded through SplitMix64, so nearby
    /// seeds still yield uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `[0, n)`. `n = 0` returns 0.
    pub fn gen_index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Lemire-style widening reduction: unbiased enough for workload
        // generation and much cheaper than rejection sampling.
        let hi = ((self.next_u64() as u128 * n as u128) >> 64) as usize;
        hi.min(n - 1)
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.gen_index(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_index_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_index(n) < n);
            }
        }
        assert_eq!(r.gen_index(0), 0);
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = r.gen_range_inclusive(3, 7);
            assert!((3..=7).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(11);
        assert!((0..50).all(|_| r.gen_bool(1.0)));
        assert!((0..50).all(|_| !r.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..=6_000).contains(&heads), "heads = {heads}");
    }
}
