//! # sedex-scenarios
//!
//! Workload substrate for the SEDEX evaluation — our re-implementation of
//! the metadata/data generators the paper uses:
//!
//! * [`scenario`] — the common `Scenario` shape: source schema, target
//!   schema, correspondences, population rules, plus a deterministic
//!   populator (the ToXgene substitute);
//! * [`datagen`] — seeded value generation;
//! * [`ibench`] — iBench-style primitives (CP, VP, HP, SU) and the **STB**
//!   dataset of Section 5.1, with the configurable fraction of keyed target
//!   relations that drives Fig. 9;
//! * [`ambiguity`] — the two generalization UDPs (`sc1`, `sc2`) and the
//!   **AMB** dataset of Fig. 10;
//! * [`stbench`] — the ten STBenchmark basic scenarios of Figs. 13/15
//!   (CP, CV, HP, SK, VP, UN, NE, DE, KO, AV);
//! * [`compose`] — the composed large scenarios `s25..s100` of Fig. 11 and
//!   the fixed scenarios `a–d` of Fig. 12;
//! * [`university`] — the running example of Figs. 2–3;
//! * [`rng`] — the in-tree deterministic PRNG behind all of the above;
//! * [`textfmt`] — the plain-text `.sdx` scenario format and its parser
//!   (consumed by the `sedex` CLI and the `sedex-service` wire protocol).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambiguity;
pub mod compose;
pub mod datagen;
pub mod ibench;
pub mod rng;
pub mod scenario;
pub mod stbench;
pub mod textfmt;
pub mod university;

pub use scenario::{GenRule, Scenario};
