//! iBench-style scenario generation (Section 5.1).
//!
//! iBench builds data-exchange scenarios by instantiating *primitives* —
//! small source/target schema patterns with their correspondences — many
//! times. The **STB** dataset uses the STBenchmark-supported primitives
//! CP (copy), VP (vertical partitioning), HP (horizontal partitioning) and
//! SU (copy with surrogate key), "10 instances of each primitive, source
//! relations with (3-7) attributes and 100 tuples", varying the fraction of
//! target relations with a primary key (the egd knob of Fig. 9).
//!
//! One modelling note: iBench realizes HP with *selection conditions* on the
//! mappings; plain s-t tgds (and the original Clio) have no selections, so
//! we model HP with pre-partitioned source relations — schema-identical
//! partitions each mapping to its own target. This keeps HP neutral between
//! the systems being compared (both see the same work) while preserving its
//! schema shape and reuse profile.

use sedex_mapping::Correspondences;
use sedex_storage::{RelationSchema, Schema};

use crate::rng::SmallRng;
use crate::scenario::{GenRule, Scenario};

/// Configuration for iBench-style dataset generation.
#[derive(Debug, Clone)]
pub struct IbenchConfig {
    /// Instances of each primitive (the paper uses 10 for STB).
    pub instances_per_primitive: usize,
    /// Minimum attributes per source relation (paper: 3).
    pub min_attrs: usize,
    /// Maximum attributes per source relation (paper: 7).
    pub max_attrs: usize,
    /// Fraction of target relations that receive a primary key — the Fig. 9
    /// x-axis (0.0, 0.25, 0.50, 0.75, 1.0).
    pub pk_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IbenchConfig {
    fn default() -> Self {
        IbenchConfig {
            instances_per_primitive: 10,
            min_attrs: 3,
            max_attrs: 7,
            pk_fraction: 1.0,
            seed: 7,
        }
    }
}

/// Mutable accumulation state while primitives are being instantiated.
#[derive(Debug, Default)]
pub struct ScenarioBuilder {
    /// Source relations accumulated so far.
    pub source: Vec<RelationSchema>,
    /// Target relations accumulated so far.
    pub target: Vec<RelationSchema>,
    /// Correspondences accumulated so far.
    pub sigma: Correspondences,
    /// Population rules accumulated so far.
    pub rules: Vec<GenRule>,
}

impl ScenarioBuilder {
    /// Finish: validate both schemas and wrap into a [`Scenario`].
    pub fn build(self, name: impl Into<String>) -> Scenario {
        let source = Schema::from_relations(self.source).expect("valid generated source schema");
        let target = Schema::from_relations(self.target).expect("valid generated target schema");
        let mut s = Scenario::new(name, source, target, self.sigma);
        s.rules = self.rules;
        s
    }
}

/// Column names `"{prefix}_{base}{i}"` for `0..k`.
fn cols(prefix: &str, base: &str, k: usize) -> Vec<String> {
    (0..k).map(|i| format!("{prefix}_{base}{i}")).collect()
}

/// CP — copy a relation.
pub fn add_cp(b: &mut ScenarioBuilder, prefix: &str, attrs: usize, pk_target: bool) {
    let src_cols = cols(prefix, "a", attrs);
    let tgt_cols = cols(prefix, "b", attrs);
    let src = RelationSchema::with_any_columns(format!("{prefix}_R"), &src_cols)
        .primary_key(&[&src_cols[0]])
        .expect("key col exists");
    let mut tgt = RelationSchema::with_any_columns(format!("{prefix}_T"), &tgt_cols);
    if pk_target {
        tgt = tgt.primary_key(&[&tgt_cols[0]]).expect("key col exists");
    }
    for (s, t) in src_cols.iter().zip(&tgt_cols) {
        b.sigma.add_names(s.clone(), t.clone());
    }
    b.source.push(src);
    b.target.push(tgt);
}

/// VP — vertical partitioning: one source relation split into two target
/// relations joined key-to-key.
pub fn add_vp(b: &mut ScenarioBuilder, prefix: &str, attrs: usize, pk_target: bool) {
    let attrs = attrs.max(3);
    let src_cols = {
        let mut v = vec![format!("{prefix}_k")];
        v.extend(cols(prefix, "a", attrs - 1));
        v
    };
    let src = RelationSchema::with_any_columns(format!("{prefix}_R"), &src_cols)
        .primary_key(&[&src_cols[0]])
        .expect("key col exists");
    let split = (attrs - 1) / 2;
    let t1_cols = {
        let mut v = vec![format!("{prefix}_t1k")];
        v.extend(src_cols[1..=split].iter().map(|c| format!("{c}_t")));
        v
    };
    let t2_cols = {
        let mut v = vec![format!("{prefix}_t2k")];
        v.extend(src_cols[split + 1..].iter().map(|c| format!("{c}_t")));
        v
    };
    let mut t1 = RelationSchema::with_any_columns(format!("{prefix}_T1"), &t1_cols);
    let mut t2 = RelationSchema::with_any_columns(format!("{prefix}_T2"), &t2_cols);
    if pk_target {
        t1 = t1.primary_key(&[&t1_cols[0]]).expect("key col exists");
        t2 = t2.primary_key(&[&t2_cols[0]]).expect("key col exists");
        // Key-to-key link connecting the partition halves.
        t1 = t1
            .foreign_key(&[&t1_cols[0]], format!("{prefix}_T2"))
            .expect("key col exists");
    }
    b.sigma.add_names(src_cols[0].clone(), t1_cols[0].clone());
    b.sigma.add_names(src_cols[0].clone(), t2_cols[0].clone());
    for (s, t) in src_cols[1..=split].iter().zip(&t1_cols[1..]) {
        b.sigma.add_names(s.clone(), t.clone());
    }
    for (s, t) in src_cols[split + 1..].iter().zip(&t2_cols[1..]) {
        b.sigma.add_names(s.clone(), t.clone());
    }
    b.source.push(src);
    b.target.push(t1);
    b.target.push(t2);
}

/// HP — horizontal partitioning, modelled with pre-partitioned sources (see
/// the module docs): two schema-identical partitions, each copying to its
/// own target.
pub fn add_hp(b: &mut ScenarioBuilder, prefix: &str, attrs: usize, pk_target: bool) {
    for part in 0..2 {
        let p = format!("{prefix}p{part}");
        add_cp(b, &p, attrs, pk_target);
    }
}

/// SU — copy with a surrogate key: the target gains a key column with no
/// source correspondence.
pub fn add_su(b: &mut ScenarioBuilder, prefix: &str, attrs: usize, pk_target: bool) {
    let src_cols = cols(prefix, "a", attrs);
    let src = RelationSchema::with_any_columns(format!("{prefix}_R"), &src_cols)
        .primary_key(&[&src_cols[0]])
        .expect("key col exists");
    let tgt_cols = {
        let mut v = vec![format!("{prefix}_sk")];
        v.extend(cols(prefix, "b", attrs));
        v
    };
    let mut tgt = RelationSchema::with_any_columns(format!("{prefix}_T"), &tgt_cols);
    if pk_target {
        tgt = tgt.primary_key(&[&tgt_cols[0]]).expect("key col exists");
    }
    for (s, t) in src_cols.iter().zip(&tgt_cols[1..]) {
        b.sigma.add_names(s.clone(), t.clone());
    }
    b.source.push(src);
    b.target.push(tgt);
}

/// SH — a shared target across two primitives (iBench's "sharing of
/// relations across primitives"): two source relations describing the SAME
/// entities (keys paired via [`GenRule::SharedKeys`]) each map a
/// complementary half of one target relation. Without a target key the two
/// partial tuples per entity survive with nulls; with the key egd they
/// merge — the mechanism behind Fig. 9's null reduction.
pub fn add_sh(b: &mut ScenarioBuilder, prefix: &str, attrs: usize, pk_target: bool) {
    let half = attrs.max(2);
    let r1_cols: Vec<String> = std::iter::once(format!("{prefix}_k1"))
        .chain((0..half).map(|i| format!("{prefix}_a{i}")))
        .collect();
    let r2_cols: Vec<String> = std::iter::once(format!("{prefix}_k2"))
        .chain((0..half).map(|i| format!("{prefix}_b{i}")))
        .collect();
    let r1 = RelationSchema::with_any_columns(format!("{prefix}_R1"), &r1_cols)
        .primary_key(&[&r1_cols[0]])
        .expect("key col exists");
    let r2 = RelationSchema::with_any_columns(format!("{prefix}_R2"), &r2_cols)
        .primary_key(&[&r2_cols[0]])
        .expect("key col exists");
    let t_cols: Vec<String> = std::iter::once(format!("{prefix}_tk"))
        .chain((0..half).map(|i| format!("{prefix}_ta{i}")))
        .chain((0..half).map(|i| format!("{prefix}_tb{i}")))
        .collect();
    let mut t = RelationSchema::with_any_columns(format!("{prefix}_T"), &t_cols);
    if pk_target {
        t = t.primary_key(&[&t_cols[0]]).expect("key col exists");
    }
    b.sigma.add_names(r1_cols[0].clone(), t_cols[0].clone());
    b.sigma.add_names(r2_cols[0].clone(), t_cols[0].clone());
    for i in 0..half {
        b.sigma
            .add_names(format!("{prefix}_a{i}"), format!("{prefix}_ta{i}"));
        b.sigma
            .add_names(format!("{prefix}_b{i}"), format!("{prefix}_tb{i}"));
    }
    b.source.push(r1);
    b.source.push(r2);
    b.target.push(t);
    b.rules.push(GenRule::SharedKeys {
        relation: format!("{prefix}_R2"),
        column: format!("{prefix}_k2"),
        from_relation: format!("{prefix}_R1"),
    });
}

/// Build the **STB** dataset: `instances_per_primitive` instances of each of
/// CP, VP, HP and SU (plus SH, the cross-primitive target sharing iBench
/// applies to them), with the configured attribute range and target-key
/// fraction.
pub fn stb(cfg: &IbenchConfig) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = ScenarioBuilder::default();
    for i in 0..cfg.instances_per_primitive {
        let attrs = rng.gen_range_inclusive(cfg.min_attrs, cfg.max_attrs);
        add_cp(
            &mut b,
            &format!("cp{i}"),
            attrs,
            rng.gen_bool(cfg.pk_fraction),
        );
    }
    for i in 0..cfg.instances_per_primitive {
        let attrs = rng.gen_range_inclusive(cfg.min_attrs, cfg.max_attrs);
        add_vp(
            &mut b,
            &format!("vp{i}"),
            attrs,
            rng.gen_bool(cfg.pk_fraction),
        );
    }
    for i in 0..cfg.instances_per_primitive {
        let attrs = rng.gen_range_inclusive(cfg.min_attrs, cfg.max_attrs);
        add_hp(
            &mut b,
            &format!("hp{i}"),
            attrs,
            rng.gen_bool(cfg.pk_fraction),
        );
    }
    for i in 0..cfg.instances_per_primitive {
        let attrs = rng.gen_range_inclusive(cfg.min_attrs, cfg.max_attrs);
        add_su(
            &mut b,
            &format!("su{i}"),
            attrs,
            rng.gen_bool(cfg.pk_fraction),
        );
    }
    for i in 0..cfg.instances_per_primitive {
        let attrs = rng.gen_range_inclusive(cfg.min_attrs, cfg.max_attrs);
        add_sh(
            &mut b,
            &format!("sh{i}"),
            attrs / 2 + 1,
            rng.gen_bool(cfg.pk_fraction),
        );
    }
    b.build("STB")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_core::{SedexConfig, SedexEngine};
    use sedex_mapping::SpicyEngine;

    #[test]
    fn stb_shape() {
        let s = stb(&IbenchConfig::default());
        // CP: 1+1 rel per instance; VP: 1+2; HP: 2+2; SU: 1+1; SH: 2+1 →
        // 10×(7 src, 7 tgt).
        assert_eq!(s.source.len(), 70);
        assert_eq!(s.target.len(), 70);
        assert!(!s.sigma.is_empty());
        // Full pk fraction: every target relation keyed.
        assert!(s.target.relations().iter().all(|r| r.has_primary_key()));
    }

    #[test]
    fn pk_fraction_zero_drops_all_target_keys() {
        let s = stb(&IbenchConfig {
            pk_fraction: 0.0,
            ..IbenchConfig::default()
        });
        assert!(s.target.relations().iter().all(|r| !r.has_primary_key()));
        assert!(s.target_egds().is_empty());
    }

    #[test]
    fn stb_is_deterministic() {
        let a = stb(&IbenchConfig::default());
        let b = stb(&IbenchConfig::default());
        assert_eq!(a.source, b.source);
        assert_eq!(a.target, b.target);
    }

    #[test]
    fn cp_roundtrip_through_sedex() {
        let mut b = ScenarioBuilder::default();
        add_cp(&mut b, "cp0", 4, true);
        let s = b.build("cp-only");
        let inst = s.populate(25, 1).unwrap();
        let engine = SedexEngine::new();
        let (out, report) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_eq!(out.relation("cp0_T").unwrap().len(), 25);
        assert_eq!(report.stats.nulls, 0);
        assert_eq!(report.stats.constants, 25 * 4);
    }

    #[test]
    fn vp_splits_without_nulls_under_sedex() {
        let mut b = ScenarioBuilder::default();
        add_vp(&mut b, "vp0", 5, true);
        let s = b.build("vp-only");
        let inst = s.populate(20, 2).unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        assert_eq!(out.relation("vp0_T1").unwrap().len(), 20, "{out}");
        assert_eq!(out.relation("vp0_T2").unwrap().len(), 20, "{out}");
        assert_eq!(report.stats.nulls, 0, "{out}");
        // All 5 source attributes per tuple survive across the two halves.
        assert_eq!(report.stats.constants, 20 * (5 + 1)); // key lands twice
    }

    #[test]
    fn su_creates_surrogates() {
        let mut b = ScenarioBuilder::default();
        add_su(&mut b, "su0", 3, true);
        let s = b.build("su-only");
        let inst = s.populate(10, 3).unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let t = out.relation("su0_T").unwrap();
        assert_eq!(t.len(), 10);
        // Surrogate keys are labeled nulls, all distinct.
        let keys: std::collections::HashSet<_> =
            t.rows().iter().map(|r| r.values()[0].clone()).collect();
        assert_eq!(keys.len(), 10);
        assert!(keys.iter().all(|k| k.is_labeled_null()));
        assert_eq!(report.stats.constants, 10 * 3);
    }

    #[test]
    fn sedex_beats_spicy_on_stb_nulls() {
        // The Fig. 9 claim at 100% egds: SEDEX generates fewer nulls.
        let cfg = IbenchConfig {
            instances_per_primitive: 2,
            ..IbenchConfig::default()
        };
        let s = stb(&cfg);
        let inst = s.populate(30, 5).unwrap();
        let (_, sedex_rep) = SedexEngine::with_config(SedexConfig::default())
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
        let (_, spicy_rep) = spicy.run(&inst, &s.target).unwrap();
        assert!(
            sedex_rep.stats.nulls <= spicy_rep.stats.nulls,
            "sedex {} vs spicy {}",
            sedex_rep.stats.nulls,
            spicy_rep.stats.nulls
        );
    }
}
