//! Seeded deterministic value generation — the ToXgene substitute.
//!
//! The paper populates source instances with iBench's ToXgene-based data
//! generator. All our experiments need from it is: deterministic values,
//! unique keys, bounded value domains (so that egds and script reuse have
//! something to bite on), and reproducibility across runs.

use sedex_storage::Value;

use crate::rng::SmallRng;

/// Deterministic value source for one scenario population run.
#[derive(Debug)]
pub struct DataGen {
    rng: SmallRng,
    /// Non-key values are drawn from a domain of this many distinct values
    /// per column (bounded domains produce realistic duplicate rates).
    pub domain: usize,
}

impl DataGen {
    /// A generator with the given seed and a default domain of 1000 values
    /// per column.
    pub fn new(seed: u64) -> Self {
        DataGen {
            rng: SmallRng::seed_from_u64(seed),
            domain: 1000,
        }
    }

    /// Override the per-column domain size.
    pub fn with_domain(mut self, domain: usize) -> Self {
        self.domain = domain.max(1);
        self
    }

    /// A unique key value for row `row` of `relation`.
    pub fn key(&mut self, relation: &str, row: usize) -> Value {
        Value::Text(format!("{relation}#{row}"))
    }

    /// A non-key value for `column`, drawn from the bounded domain.
    pub fn value(&mut self, column: &str, _row: usize) -> Value {
        let v = self.rng.gen_index(self.domain);
        Value::Text(format!("{column}-{v}"))
    }

    /// Pick a random index below `n` (for foreign-key targets).
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_index(n)
    }

    /// A random boolean with the given probability of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DataGen::new(42);
        let mut b = DataGen::new(42);
        for i in 0..10 {
            assert_eq!(a.value("c", i), b.value("c", i));
            assert_eq!(a.pick(100), b.pick(100));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DataGen::new(1);
        let mut b = DataGen::new(2);
        let va: Vec<Value> = (0..20).map(|i| a.value("c", i)).collect();
        let vb: Vec<Value> = (0..20).map(|i| b.value("c", i)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn keys_are_unique_per_row() {
        let mut g = DataGen::new(0);
        let k1 = g.key("R", 1);
        let k2 = g.key("R", 2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn domain_bounds_distinct_values() {
        let mut g = DataGen::new(7).with_domain(3);
        let vals: std::collections::HashSet<Value> = (0..100).map(|i| g.value("c", i)).collect();
        assert!(vals.len() <= 3);
    }
}
