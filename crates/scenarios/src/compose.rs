//! Composed large scenarios — Fig. 11 (`s25`–`s100`) and the fixed
//! scenarios `a`–`d` of Fig. 12.
//!
//! Section 5.2 builds the Fig. 11 scenarios with STBenchmark's scenario
//! generator: "four relational scenarios (s25, s50, s75, s100) … each
//! scenario contains 25, 50, 75, and 100 tables", with an average join path
//! length of 3, composing Vertical Partitioning (repetitions 3/6/11/15),
//! De-normalization (3/6/12/15) and Copy (1/1/1/1). One primary key per
//! table (egds up to the number of tables).
//!
//! Fig. 12 uses "four data exchange scenarios … denoted a, b, c, d where the
//! number of mappings varies between 4 and 10, and the number of egds varies
//! between 5 and 13", run at source sizes 100k–1M.

use crate::ibench::{add_cp, add_vp, ScenarioBuilder};
use crate::scenario::Scenario;
use crate::stbench::add_de;

/// Repetition parameters for one composed scenario (Section 5.2).
#[derive(Debug, Clone, Copy)]
pub struct Repetitions {
    /// Vertical-partitioning repetitions.
    pub vp: usize,
    /// De-normalization repetitions.
    pub de: usize,
    /// Copy repetitions.
    pub cp: usize,
}

/// The four Fig. 11 scenario sizes with the paper's repetition parameters.
pub fn fig11_sizes() -> [(&'static str, Repetitions); 4] {
    [
        (
            "s25",
            Repetitions {
                vp: 3,
                de: 3,
                cp: 1,
            },
        ),
        (
            "s50",
            Repetitions {
                vp: 6,
                de: 6,
                cp: 1,
            },
        ),
        (
            "s75",
            Repetitions {
                vp: 11,
                de: 12,
                cp: 1,
            },
        ),
        (
            "s100",
            Repetitions {
                vp: 15,
                de: 15,
                cp: 1,
            },
        ),
    ]
}

/// Compose a large scenario from repetition parameters. Join-path lengths
/// average 3 (DE chains parent→child, VP links partition halves).
pub fn composed(name: &str, reps: Repetitions) -> Scenario {
    let mut b = ScenarioBuilder::default();
    for i in 0..reps.vp {
        add_vp(&mut b, &format!("{name}_vp{i}"), 5, true);
    }
    for i in 0..reps.de {
        add_de(&mut b, &format!("{name}_de{i}"), 2, 2);
    }
    for i in 0..reps.cp {
        add_cp(&mut b, &format!("{name}_cp{i}"), 4, true);
    }
    b.build(name)
}

/// All four Fig. 11 scenarios.
pub fn fig11_scenarios() -> Vec<Scenario> {
    fig11_sizes()
        .into_iter()
        .map(|(name, reps)| composed(name, reps))
        .collect()
}

/// The four fixed scenarios `a`–`d` of Fig. 12, sized so that the Clio-style
/// mapping count falls in the paper's 4–10 range and target egds in 5–13.
pub fn abcd_scenarios() -> Vec<Scenario> {
    [
        (
            "a",
            Repetitions {
                vp: 1,
                de: 1,
                cp: 2,
            },
        ),
        (
            "b",
            Repetitions {
                vp: 2,
                de: 1,
                cp: 2,
            },
        ),
        (
            "c",
            Repetitions {
                vp: 2,
                de: 2,
                cp: 2,
            },
        ),
        (
            "d",
            Repetitions {
                vp: 3,
                de: 2,
                cp: 0,
            },
        ),
    ]
    .into_iter()
    .map(|(name, reps)| composed(name, reps))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedex_core::SedexEngine;
    use sedex_mapping::generate_tgds;

    #[test]
    fn fig11_sizes_grow_with_name() {
        // The paper's own realized sizes diverge from the nominal names
        // ("13 relations, 3 joins" up to "48 relations, 31 joins"); what
        // matters is strict growth across s25 → s100 and the realized range.
        let sizes: Vec<usize> = fig11_scenarios()
            .iter()
            .map(|s| s.source.len() + s.target.len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
        assert!(*sizes.first().unwrap() >= 13);
        assert!(*sizes.last().unwrap() <= 110);
    }

    #[test]
    fn every_target_table_keyed() {
        for s in fig11_scenarios() {
            assert_eq!(s.target_egds().len(), s.target.len(), "{}", s.name);
        }
    }

    #[test]
    fn abcd_mapping_and_egd_ranges() {
        for s in abcd_scenarios() {
            let tgds = generate_tgds(&s.source, &s.target, &s.sigma);
            assert!(
                (4..=10).contains(&tgds.len()),
                "{}: {} mappings",
                s.name,
                tgds.len()
            );
            assert!(
                (5..=13).contains(&s.target_egds().len()),
                "{}: {} egds",
                s.name,
                s.target_egds().len()
            );
        }
    }

    #[test]
    fn s25_runs_end_to_end() {
        let s = composed(
            "s25",
            Repetitions {
                vp: 3,
                de: 3,
                cp: 1,
            },
        );
        let inst = s.populate(15, 8).unwrap();
        let (out, report) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        assert!(out.total_tuples() > 0);
        assert_eq!(report.tuples_unmatched, 0, "{report:?}");
        assert!(report.hit_ratio() > 0.5, "hit ratio {}", report.hit_ratio());
    }
}
