//! Integration tests over the generated workloads: STB, AMB, the ten
//! STBenchmark basics and the composed large scenarios all run end-to-end
//! through every engine.

use sedex::mapping::SpicyEngine;
use sedex::prelude::*;
use sedex::scenarios::ambiguity::amb;
use sedex::scenarios::compose::{abcd_scenarios, composed, Repetitions};
use sedex::scenarios::ibench::{stb, IbenchConfig};
use sedex::scenarios::stbench::{basic, BasicKind};

fn small_cfg() -> IbenchConfig {
    IbenchConfig {
        instances_per_primitive: 2,
        ..IbenchConfig::default()
    }
}

#[test]
fn stb_runs_through_sedex_and_spicy() {
    let s = stb(&small_cfg());
    let inst = s.populate(25, 21).unwrap();
    let (sedex_out, sedex_rep) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    assert!(sedex_out.total_tuples() > 0);
    assert_eq!(sedex_rep.tuples_unmatched, 0, "{sedex_rep:?}");

    let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
    let (spicy_out, _) = spicy.run(&inst, &s.target).unwrap();
    assert!(spicy_out.total_tuples() > 0);
    // Fig. 9 at 100% egds: SEDEX produces no more nulls than ++Spicy.
    assert!(sedex_out.stats().nulls <= spicy_out.stats().nulls);
}

#[test]
fn fig9_trend_fewer_egds_more_nulls() {
    // Both systems produce more nulls when fewer target relations carry
    // keys (less merging possible).
    let mut nulls_by_fraction = Vec::new();
    for pk_fraction in [0.0, 1.0] {
        let s = stb(&IbenchConfig {
            instances_per_primitive: 2,
            pk_fraction,
            ..IbenchConfig::default()
        });
        let inst = s.populate(25, 22).unwrap();
        let (_, rep) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        nulls_by_fraction.push(rep.stats.nulls);
    }
    assert!(
        nulls_by_fraction[0] >= nulls_by_fraction[1],
        "{nulls_by_fraction:?}"
    );
}

#[test]
fn amb_dataset_composes_and_runs() {
    let s = amb(&small_cfg(), 4);
    let inst = s.populate(12, 23).unwrap();
    let (out, rep) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    assert!(out.total_tuples() > 0);
    assert_eq!(rep.violations, 0);
}

#[test]
fn all_basic_scenarios_have_high_reuse() {
    // Fig. 15: every scenario reuses scripts; with uniform tuples the
    // distinct shapes are few.
    for kind in BasicKind::all() {
        let s = basic(kind);
        let inst = s.populate(200, 24).unwrap();
        let (_, rep) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        assert!(
            rep.reuse_percent() > 80.0,
            "{}: reuse {:.1}%",
            kind.name(),
            rep.reuse_percent()
        );
    }
}

#[test]
fn composed_scenarios_scale_in_tables_and_scripts() {
    let small = composed(
        "sA",
        Repetitions {
            vp: 2,
            de: 2,
            cp: 1,
        },
    );
    let large = composed(
        "sB",
        Repetitions {
            vp: 6,
            de: 6,
            cp: 1,
        },
    );
    let i_small = small.populate(10, 25).unwrap();
    let i_large = large.populate(10, 25).unwrap();
    let (_, r_small) = SedexEngine::new()
        .exchange(&i_small, &small.target, &small.sigma)
        .unwrap();
    let (_, r_large) = SedexEngine::new()
        .exchange(&i_large, &large.target, &large.sigma)
        .unwrap();
    // More relations → more distinct relation trees → more scripts (Fig. 11's
    // "increasing the number of tables results in new relation trees and
    // consequently new scripts").
    assert!(r_large.scripts_generated > r_small.scripts_generated);
}

#[test]
fn abcd_scenarios_run_under_all_three_engines() {
    for s in abcd_scenarios() {
        let inst = s.populate(30, 26).unwrap();
        let (sx, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let (ex, _) = EdexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
        let (px, _) = spicy.run(&inst, &s.target).unwrap();
        assert!(sx.total_tuples() > 0, "{}: sedex empty", s.name);
        assert_eq!(sx.stats(), ex.stats(), "{}: edex != sedex", s.name);
        assert!(px.total_tuples() > 0, "{}: spicy empty", s.name);
    }
}

#[test]
fn population_scales_linearly() {
    let s = basic(BasicKind::Cp);
    for n in [10usize, 100] {
        let inst = s.populate(n, 27).unwrap();
        assert_eq!(inst.total_tuples(), n);
    }
}
