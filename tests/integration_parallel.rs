//! Parallel-mode integration: the multi-threaded tree-building phase must
//! produce byte-identical instances to the serial engine, at every thread
//! count and batch size.

use sedex::core::{SedexConfig, SedexEngine};
use sedex::prelude::*;
use sedex::scenarios::compose::{composed, Repetitions};
use sedex::scenarios::ibench::{stb, IbenchConfig};

fn assert_same_instance(a: &Instance, b: &Instance) {
    for (name, rel) in a.relations() {
        let other = b.relation(name).unwrap();
        let mut r1: Vec<_> = rel.rows().to_vec();
        let mut r2: Vec<_> = other.rows().to_vec();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2, "relation {name} differs");
    }
}

#[test]
fn thread_counts_agree_on_stb() {
    let s = stb(&IbenchConfig {
        instances_per_primitive: 2,
        ..IbenchConfig::default()
    });
    let inst = s.populate(120, 41).unwrap();
    let (base, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    for threads in [2usize, 4, 8] {
        let engine = SedexEngine::with_config(SedexConfig {
            threads,
            batch_size: 64,
            ..SedexConfig::default()
        });
        let (out, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_same_instance(&base, &out);
    }
}

#[test]
fn batch_sizes_agree() {
    let s = composed(
        "sP",
        Repetitions {
            vp: 2,
            de: 2,
            cp: 1,
        },
    );
    let inst = s.populate(77, 42).unwrap();
    let (base, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    for batch in [1usize, 7, 64, 100_000] {
        let engine = SedexEngine::with_config(SedexConfig {
            batch_size: batch,
            threads: 3,
            ..SedexConfig::default()
        });
        let (out, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_same_instance(&base, &out);
    }
}

/// The full-pipeline determinism criterion: at any thread count the engine
/// must produce a *byte-identical* target instance (per the canonical codec
/// encoding, which fixes schema and row order), identical
/// inserted/merged/violation counters, and an identical script repository —
/// same entries, same hit/miss counters. Row sorting (as in
/// `assert_same_instance`) would hide row-order and fresh-label
/// nondeterminism; byte equality does not.
fn assert_byte_identical_across_threads(
    inst: &Instance,
    target: &Schema,
    sigma: &sedex::mapping::Correspondences,
) {
    use sedex::storage::codec::{encode_instance, ByteWriter};

    let encode = |out: &Instance| {
        let mut w = ByteWriter::new();
        encode_instance(&mut w, out);
        w.into_bytes()
    };
    let serial = SedexEngine::with_config(SedexConfig {
        record_hit_events: true,
        ..SedexConfig::default()
    });
    let (base_out, base_report, base_repo) = serial
        .exchange_with_repository(inst, target, sigma)
        .unwrap();
    let base_bytes = encode(&base_out);
    for threads in [2usize, 8] {
        let engine = SedexEngine::with_config(SedexConfig {
            threads,
            batch_size: 64,
            parallel_threshold: 1,
            record_hit_events: true,
            ..SedexConfig::default()
        });
        let (out, report, repo) = engine
            .exchange_with_repository(inst, target, sigma)
            .unwrap();
        assert_eq!(
            encode(&out),
            base_bytes,
            "threads={threads}: target instance bytes differ"
        );
        assert_eq!(
            (report.inserted, report.merged, report.violations),
            (
                base_report.inserted,
                base_report.merged,
                base_report.violations
            ),
            "threads={threads}: outcome counters differ"
        );
        assert_eq!(
            (report.scripts_generated, report.scripts_reused),
            (base_report.scripts_generated, base_report.scripts_reused),
            "threads={threads}: repository counters differ"
        );
        let hit_seq = |r: &sedex::core::ExchangeReport| {
            r.hit_events.iter().map(|e| e.hit).collect::<Vec<_>>()
        };
        assert_eq!(
            hit_seq(&report),
            hit_seq(&base_report),
            "threads={threads}: hit-event sequence differs"
        );
        assert_eq!(
            repo.entries, base_repo.entries,
            "threads={threads}: repository entries differ"
        );
        assert_eq!(
            (repo.hits, repo.misses),
            (base_repo.hits, base_repo.misses),
            "threads={threads}: repository hit/miss counters differ"
        );
    }
}

#[test]
fn determinism_threads_1_vs_8_university() {
    use sedex::scenarios::university;
    let s = university::scenario();
    let mut inst = university::fig3_instance().unwrap();
    // Widen the instance so several batches cross the parallel threshold.
    for i in 0..400 {
        inst.insert(
            "Registration",
            sedex::storage::Tuple::of([
                format!("s{}", 1 + i % 2),
                format!("c{i}"),
                format!("d{i}"),
            ]),
            ConflictPolicy::Allow,
        )
        .unwrap();
    }
    assert_byte_identical_across_threads(&inst, &s.target, &s.sigma);
}

#[test]
fn determinism_threads_1_vs_8_ibench_stb() {
    let s = stb(&IbenchConfig {
        instances_per_primitive: 2,
        ..IbenchConfig::default()
    });
    // SK/NE primitives mint fresh labeled nulls: the byte comparison also
    // proves the fresh-label sequence is thread-count independent.
    let inst = s.populate(300, 97).unwrap();
    assert_byte_identical_across_threads(&inst, &s.target, &s.sigma);
}

#[test]
fn parallel_reports_consistent_counts() {
    let s = stb(&IbenchConfig {
        instances_per_primitive: 1,
        ..IbenchConfig::default()
    });
    let inst = s.populate(200, 43).unwrap();
    let (_, serial) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    let engine = SedexEngine::with_config(SedexConfig {
        threads: 4,
        batch_size: 50,
        ..SedexConfig::default()
    });
    let (_, parallel) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
    assert_eq!(
        serial.tuples_processed + serial.tuples_skipped_seen,
        parallel.tuples_processed + parallel.tuples_skipped_seen
    );
    assert_eq!(serial.stats, parallel.stats);
}
