//! Parallel-mode integration: the multi-threaded tree-building phase must
//! produce byte-identical instances to the serial engine, at every thread
//! count and batch size.

use sedex::core::{SedexConfig, SedexEngine};
use sedex::prelude::*;
use sedex::scenarios::compose::{composed, Repetitions};
use sedex::scenarios::ibench::{stb, IbenchConfig};

fn assert_same_instance(a: &Instance, b: &Instance) {
    for (name, rel) in a.relations() {
        let other = b.relation(name).unwrap();
        let mut r1: Vec<_> = rel.rows().to_vec();
        let mut r2: Vec<_> = other.rows().to_vec();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2, "relation {name} differs");
    }
}

#[test]
fn thread_counts_agree_on_stb() {
    let s = stb(&IbenchConfig {
        instances_per_primitive: 2,
        ..IbenchConfig::default()
    });
    let inst = s.populate(120, 41).unwrap();
    let (base, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    for threads in [2usize, 4, 8] {
        let engine = SedexEngine::with_config(SedexConfig {
            threads,
            batch_size: 64,
            ..SedexConfig::default()
        });
        let (out, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_same_instance(&base, &out);
    }
}

#[test]
fn batch_sizes_agree() {
    let s = composed(
        "sP",
        Repetitions {
            vp: 2,
            de: 2,
            cp: 1,
        },
    );
    let inst = s.populate(77, 42).unwrap();
    let (base, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    for batch in [1usize, 7, 64, 100_000] {
        let engine = SedexEngine::with_config(SedexConfig {
            batch_size: batch,
            threads: 3,
            ..SedexConfig::default()
        });
        let (out, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_same_instance(&base, &out);
    }
}

#[test]
fn parallel_reports_consistent_counts() {
    let s = stb(&IbenchConfig {
        instances_per_primitive: 1,
        ..IbenchConfig::default()
    });
    let inst = s.populate(200, 43).unwrap();
    let (_, serial) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    let engine = SedexEngine::with_config(SedexConfig {
        threads: 4,
        batch_size: 50,
        ..SedexConfig::default()
    });
    let (_, parallel) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
    assert_eq!(
        serial.tuples_processed + serial.tuples_skipped_seen,
        parallel.tuples_processed + parallel.tuples_skipped_seen
    );
    assert_eq!(serial.stats, parallel.stats);
}
