//! Integration tests driving the `sedex` CLI binary on the shipped scenario
//! files.

use std::process::Command;

fn sedex_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sedex")
}

fn repo_file(name: &str) -> String {
    format!(
        "{}/../../scenarios_examples/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn check_validates_university_file() {
    let out = Command::new(sedex_bin())
        .args(["check", &repo_file("university.sdx")])
        .output()
        .expect("run sedex");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 source relations"));
    assert!(stdout.contains("3 target relations"));
    assert!(stdout.contains("8 tuples"));
}

#[test]
fn run_sedex_resolves_ambiguity_file() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("ambiguity.sdx")])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Grad (1 tuples)"), "{stdout}");
    assert!(stdout.contains("Prof (1 tuples)"), "{stdout}");
    assert!(stdout.contains("0 nulls"), "{stdout}");
}

#[test]
fn run_spicy_shows_redundancy_on_same_file() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("ambiguity.sdx"), "--engine", "spicy"])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Grad (2 tuples)"), "{stdout}");
    assert!(stdout.contains("Prof (2 tuples)"), "{stdout}");
}

#[test]
fn sql_flag_prints_insert_statements() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("ambiguity.sdx"), "--sql", "--quiet"])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INSERT INTO Grad"), "{stdout}");
    assert!(stdout.contains("INSERT INTO Prof"), "{stdout}");
}

#[test]
fn trees_prints_relation_trees() {
    let out = Command::new(sedex_bin())
        .args(["trees", &repo_file("university.sdx")])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("-- Registration (height 5) --"), "{stdout}");
    assert!(stdout.contains("supervisor"), "{stdout}");
}

#[test]
fn bad_file_fails_with_line_number() {
    let dir = std::env::temp_dir().join("sedex_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.sdx");
    std::fs::write(&path, "[source]\nR(a\n").unwrap();
    let out = Command::new(sedex_bin())
        .args(["check", path.to_str().unwrap()])
        .output()
        .expect("run sedex");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn gen_produces_runnable_files() {
    let dir = std::env::temp_dir().join("sedex_cli_gen");
    std::fs::create_dir_all(&dir).unwrap();
    for kind in ["university", "vp", "ne", "amb"] {
        let out = Command::new(sedex_bin())
            .args(["gen", kind, "--tuples", "4"])
            .output()
            .expect("run sedex gen");
        assert!(
            out.status.success(),
            "gen {kind}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let path = dir.join(format!("{kind}.sdx"));
        std::fs::write(&path, &out.stdout).unwrap();
        let run = Command::new(sedex_bin())
            .args(["run", path.to_str().unwrap(), "--quiet"])
            .output()
            .expect("run generated file");
        assert!(
            run.status.success(),
            "run {kind}: {}",
            String::from_utf8_lossy(&run.stderr)
        );
        let stdout = String::from_utf8_lossy(&run.stdout);
        assert!(stdout.contains("sedex:"), "{stdout}");
    }
}

#[test]
fn unknown_engine_is_an_error() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("university.sdx"), "--engine", "nope"])
        .output()
        .expect("run sedex");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}
