//! Integration tests driving the `sedex` CLI binary on the shipped scenario
//! files.

use std::process::Command;

fn sedex_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sedex")
}

fn repo_file(name: &str) -> String {
    format!(
        "{}/../../scenarios_examples/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn check_validates_university_file() {
    let out = Command::new(sedex_bin())
        .args(["check", &repo_file("university.sdx")])
        .output()
        .expect("run sedex");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 source relations"));
    assert!(stdout.contains("3 target relations"));
    assert!(stdout.contains("8 tuples"));
}

#[test]
fn run_sedex_resolves_ambiguity_file() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("ambiguity.sdx")])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Grad (1 tuples)"), "{stdout}");
    assert!(stdout.contains("Prof (1 tuples)"), "{stdout}");
    assert!(stdout.contains("0 nulls"), "{stdout}");
}

#[test]
fn run_spicy_shows_redundancy_on_same_file() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("ambiguity.sdx"), "--engine", "spicy"])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Grad (2 tuples)"), "{stdout}");
    assert!(stdout.contains("Prof (2 tuples)"), "{stdout}");
}

#[test]
fn sql_flag_prints_insert_statements() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("ambiguity.sdx"), "--sql", "--quiet"])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INSERT INTO Grad"), "{stdout}");
    assert!(stdout.contains("INSERT INTO Prof"), "{stdout}");
}

#[test]
fn trees_prints_relation_trees() {
    let out = Command::new(sedex_bin())
        .args(["trees", &repo_file("university.sdx")])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("-- Registration (height 5) --"), "{stdout}");
    assert!(stdout.contains("supervisor"), "{stdout}");
}

#[test]
fn bad_file_fails_with_line_number() {
    let dir = std::env::temp_dir().join("sedex_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.sdx");
    std::fs::write(&path, "[source]\nR(a\n").unwrap();
    let out = Command::new(sedex_bin())
        .args(["check", path.to_str().unwrap()])
        .output()
        .expect("run sedex");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn gen_produces_runnable_files() {
    let dir = std::env::temp_dir().join("sedex_cli_gen");
    std::fs::create_dir_all(&dir).unwrap();
    for kind in ["university", "vp", "ne", "amb"] {
        let out = Command::new(sedex_bin())
            .args(["gen", kind, "--tuples", "4"])
            .output()
            .expect("run sedex gen");
        assert!(
            out.status.success(),
            "gen {kind}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let path = dir.join(format!("{kind}.sdx"));
        std::fs::write(&path, &out.stdout).unwrap();
        let run = Command::new(sedex_bin())
            .args(["run", path.to_str().unwrap(), "--quiet"])
            .output()
            .expect("run generated file");
        assert!(
            run.status.success(),
            "run {kind}: {}",
            String::from_utf8_lossy(&run.stderr)
        );
        let stdout = String::from_utf8_lossy(&run.stdout);
        assert!(stdout.contains("sedex:"), "{stdout}");
    }
}

#[test]
fn run_with_threads_and_batch_size_matches_serial() {
    let serial = Command::new(sedex_bin())
        .args(["run", &repo_file("university.sdx"), "--quiet"])
        .output()
        .expect("run sedex");
    assert!(serial.status.success());
    let parallel = Command::new(sedex_bin())
        .args([
            "run",
            &repo_file("university.sdx"),
            "--quiet",
            "--threads",
            "3",
            "--batch-size",
            "4",
        ])
        .output()
        .expect("run sedex");
    assert!(
        parallel.status.success(),
        "{}",
        String::from_utf8_lossy(&parallel.stderr)
    );
    // Same counters either way: the summary line is identical up to times.
    let strip = |s: &[u8]| {
        String::from_utf8_lossy(s)
            .lines()
            .filter(|l| l.starts_with("sedex:"))
            .map(|l| {
                l.split(" | ")
                    .filter(|part| !part.starts_with("Tg "))
                    .collect::<Vec<_>>()
                    .join(" | ")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&serial.stdout), strip(&parallel.stdout));
}

#[test]
fn verbose_flag_prints_multiline_report() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("university.sdx"), "--quiet", "--verbose"])
        .output()
        .expect("run sedex");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scripts:"), "{stdout}");
    assert!(stdout.contains("% reuse"), "{stdout}");
    assert!(stdout.contains("rows:"), "{stdout}");
}

#[test]
fn serve_smoke_open_push_shutdown() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let mut child = Command::new(sedex_bin())
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn sedex serve");
    // The first stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_owned();

    let stream = TcpStream::connect(&addr).expect("connect to sedex serve");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let send = |w: &mut TcpStream, text: &str| {
        w.write_all(text.as_bytes()).unwrap();
        w.flush().unwrap();
    };
    let read_block = |r: &mut BufReader<TcpStream>| {
        let mut lines = Vec::new();
        loop {
            let mut l = String::new();
            assert!(r.read_line(&mut l).unwrap() > 0, "server hung up");
            let l = l.trim_end().to_owned();
            if l == "." {
                break;
            }
            lines.push(l);
        }
        lines
    };

    send(
        &mut writer,
        "OPEN t1\n[source]\nS(a*, b)\n[target]\nT(x*, y)\n[correspondences]\na <-> x\nb <-> y\nEND\n",
    );
    let open = read_block(&mut reader);
    assert!(open[0].starts_with("OK opened t1"), "{open:?}");

    send(&mut writer, "PUSH t1 S: k1, v1\n");
    let push = read_block(&mut reader);
    assert!(push[0].contains("scripts 1 generated"), "{push:?}");

    send(&mut writer, "SQL t1\n");
    let sql = read_block(&mut reader);
    assert!(sql.iter().any(|l| l.contains("INSERT INTO T")), "{sql:?}");

    send(&mut writer, "SHUTDOWN\n");
    let bye = read_block(&mut reader);
    assert!(bye[0].starts_with("OK shutting down"), "{bye:?}");

    let status = child.wait().expect("serve exit");
    assert!(status.success());
}

#[test]
fn unknown_engine_is_an_error() {
    let out = Command::new(sedex_bin())
        .args(["run", &repo_file("university.sdx"), "--engine", "nope"])
        .output()
        .expect("run sedex");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}
