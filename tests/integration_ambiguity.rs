//! End-to-end comparison of all engines on the generalization-ambiguity
//! scenarios (Sections 1.2 / 4.5 and Fig. 10): SEDEX and EDEX produce the
//! expected solution, Clio and ++Spicy do not.

use sedex::core::quality;
use sedex::mapping::{ClioEngine, MapMergeEngine, SpicyEngine};
use sedex::prelude::*;
use sedex::scenarios::ambiguity::amb_only;

fn section12() -> (Instance, Schema, Schema, Correspondences) {
    let inst =
        RelationSchema::with_any_columns("Inst", &["name", "studentID", "employeeID", "courseId"])
            .primary_key(&["name"])
            .unwrap()
            .foreign_key(&["courseId"], "Course")
            .unwrap();
    let course = RelationSchema::with_any_columns("Course", &["courseId", "credit"])
        .primary_key(&["courseId"])
        .unwrap();
    let source_schema = Schema::from_relations(vec![inst, course]).unwrap();

    let grad = RelationSchema::with_any_columns("Grad", &["name", "stId", "course"])
        .primary_key(&["name"])
        .unwrap();
    let prof = RelationSchema::with_any_columns("Prof", &["name", "empId", "course"])
        .primary_key(&["name"])
        .unwrap();
    let target_schema = Schema::from_relations(vec![grad, prof]).unwrap();

    let mut sigma = Correspondences::new();
    sigma.add_qualified("Inst", "name", "Grad", "name");
    sigma.add_qualified("Inst", "name", "Prof", "name");
    sigma.add_qualified("Inst", "studentID", "Grad", "stId");
    sigma.add_qualified("Inst", "employeeID", "Prof", "empId");
    sigma.add_qualified("Inst", "courseId", "Grad", "course");
    sigma.add_qualified("Inst", "courseId", "Prof", "course");

    let mut source = Instance::new(source_schema.clone());
    source
        .insert("Course", tuple!["c1", 3i64], ConflictPolicy::Reject)
        .unwrap();
    source
        .insert("Course", tuple!["c2", 2i64], ConflictPolicy::Reject)
        .unwrap();
    source
        .insert(
            "Inst",
            tuple!["I1", "st1", Value::Null, "c1"],
            ConflictPolicy::Reject,
        )
        .unwrap();
    source
        .insert(
            "Inst",
            tuple!["I2", Value::Null, "e1", "c2"],
            ConflictPolicy::Reject,
        )
        .unwrap();
    (source, source_schema, target_schema, sigma)
}

#[test]
fn sedex_produces_expected_solution() {
    let (source, _, target, sigma) = section12();
    let (out, rep) = SedexEngine::new()
        .exchange(&source, &target, &sigma)
        .unwrap();
    assert_eq!(out.relation("Grad").unwrap().len(), 1);
    assert_eq!(out.relation("Prof").unwrap().len(), 1);
    assert_eq!(
        out.relation("Grad").unwrap().row(0).unwrap(),
        &tuple!["I1", "st1", "c1"]
    );
    assert_eq!(
        out.relation("Prof").unwrap().row(0).unwrap(),
        &tuple!["I2", "e1", "c2"]
    );
    assert_eq!(rep.stats.nulls, 0);
}

#[test]
fn edex_matches_sedex_quality() {
    let (source, _, target, sigma) = section12();
    let (sedex_out, _) = SedexEngine::new()
        .exchange(&source, &target, &sigma)
        .unwrap();
    let (edex_out, _) = EdexEngine::new()
        .exchange(&source, &target, &sigma)
        .unwrap();
    assert_eq!(sedex_out.stats(), edex_out.stats());
}

#[test]
fn spicy_produces_redundant_solution() {
    let (source, src_schema, target, sigma) = section12();
    let spicy = SpicyEngine::new(&src_schema, &target, &sigma);
    let (out, _) = spicy.run(&source, &target).unwrap();
    // The paper's redundant solution: both tuples land in both tables.
    assert_eq!(out.relation("Grad").unwrap().len(), 2);
    assert_eq!(out.relation("Prof").unwrap().len(), 2);
    assert!(out.stats().nulls >= 2);
}

#[test]
fn clio_is_no_better_than_spicy() {
    let (source, src_schema, target, sigma) = section12();
    let clio = ClioEngine::new(&src_schema, &target, &sigma);
    let spicy = SpicyEngine::new(&src_schema, &target, &sigma);
    let (c_out, _) = clio.run(&source, &target).unwrap();
    let (s_out, _) = spicy.run(&source, &target).unwrap();
    assert!(c_out.stats().atoms() >= s_out.stats().atoms());
}

#[test]
fn amb_quality_gap_grows_with_udp_invocations() {
    // The Fig. 10 trend: more UDP invocations → a larger ++Spicy-vs-SEDEX
    // atom gap.
    let mut gaps = Vec::new();
    for udps in [2usize, 6] {
        let s = amb_only(udps);
        let inst = s.populate(20, 13).unwrap();
        let (_, sedex_rep) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
        let (_, spicy_rep) = spicy.run(&inst, &s.target).unwrap();
        assert!(spicy_rep.stats.atoms() > sedex_rep.stats.atoms());
        gaps.push(spicy_rep.stats.atoms() - sedex_rep.stats.atoms());
    }
    assert!(gaps[1] > gaps[0], "gaps: {gaps:?}");
}

/// Score every engine against the paper's expected solution with the IQ
/// quality module: SEDEX = EDEX = perfect; the mapping-level systems lose
/// precision to redundancy.
#[test]
fn iq_scores_against_expected_solution() {
    let (source, src_schema, target, sigma) = section12();
    // The expected solution of Section 1.2.
    let mut expected = Instance::new(target.clone());
    expected
        .insert("Grad", tuple!["I1", "st1", "c1"], ConflictPolicy::Reject)
        .unwrap();
    expected
        .insert("Prof", tuple!["I2", "e1", "c2"], ConflictPolicy::Reject)
        .unwrap();

    let (sedex_out, _) = SedexEngine::new()
        .exchange(&source, &target, &sigma)
        .unwrap();
    let q = quality::compare(&sedex_out, &expected);
    assert_eq!(q.f1(), 1.0, "{q:?}");

    let (edex_out, _) = EdexEngine::new()
        .exchange(&source, &target, &sigma)
        .unwrap();
    assert_eq!(quality::compare(&edex_out, &expected).f1(), 1.0);

    let (spicy_out, _) = SpicyEngine::new(&src_schema, &target, &sigma)
        .run(&source, &target)
        .unwrap();
    let qs = quality::compare(&spicy_out, &expected);
    assert_eq!(qs.recall(), 1.0); // nothing lost…
    assert!(qs.precision() < 1.0, "{qs:?}"); // …but redundant tuples

    let (clio_out, _) = ClioEngine::new(&src_schema, &target, &sigma)
        .run(&source, &target)
        .unwrap();
    let qc = quality::compare(&clio_out, &expected);
    assert!(qc.precision() <= qs.precision());

    let (mm_out, _) = MapMergeEngine::new(&src_schema, &target, &sigma)
        .run(&source, &target)
        .unwrap();
    let qm = quality::compare(&mm_out, &expected);
    assert!(qm.precision() >= qc.precision());
    assert!(qm.precision() < 1.0);
}

#[test]
fn prune_nulls_ablation_degrades_sedex() {
    // Disabling null pruning removes SEDEX's disambiguation signal: the two
    // Inst tuples then have identical tuple trees and land in one table.
    let (source, _, target, sigma) = section12();
    let degraded = SedexEngine::with_config(sedex::core::SedexConfig {
        prune_nulls: false,
        ..sedex::core::SedexConfig::default()
    });
    let (out, _) = degraded.exchange(&source, &target, &sigma).unwrap();
    let grad = out.relation("Grad").unwrap().len();
    let prof = out.relation("Prof").unwrap().len();
    // Both tuples now go to the same host (whichever ranks first).
    assert!(
        grad == 2 && prof == 0 || grad == 0 && prof == 2,
        "grad={grad} prof={prof}"
    );
}
