//! Advanced structural coverage: multi-valued attributes (§4.3), composite
//! keys (dummy roots), deep FK chains, alternative pq-gram parameters and
//! cross-engine differential checks.

use sedex::core::{SedexConfig, SedexEngine};
use sedex::prelude::*;
use sedex::treerep::{tuple_tree, TreeConfig};

/// §4.3's multi-valued attributes: one source column starting TWO foreign
/// keys — "k distinct edges are materialized such that there will be an
/// edge from p to each qi".
#[test]
fn multi_valued_attribute_expands_both_references() {
    let person = RelationSchema::with_any_columns("Person", &["pid", "code"])
        .primary_key(&["pid"])
        .unwrap()
        .foreign_key(&["code"], "Badge")
        .unwrap()
        .foreign_key(&["code"], "Locker")
        .unwrap();
    let badge = RelationSchema::with_any_columns("Badge", &["bid", "color"])
        .primary_key(&["bid"])
        .unwrap();
    let locker = RelationSchema::with_any_columns("Locker", &["lid", "floor"])
        .primary_key(&["lid"])
        .unwrap();
    let schema = Schema::from_relations(vec![person, badge, locker]).unwrap();
    let mut inst = Instance::new(schema);
    inst.insert("Badge", tuple!["x1", "red"], ConflictPolicy::Reject)
        .unwrap();
    inst.insert("Locker", tuple!["x1", "3"], ConflictPolicy::Reject)
        .unwrap();
    inst.insert("Person", tuple!["p1", "x1"], ConflictPolicy::Reject)
        .unwrap();

    let tt = tuple_tree(&inst, "Person", 0, &TreeConfig::default()).unwrap();
    // The code node carries children from BOTH referenced relations.
    let rendered: Vec<String> = tt
        .tree
        .preorder()
        .into_iter()
        .map(|i| tt.tree.label(i).to_string())
        .collect();
    assert!(rendered.contains(&"color:red".to_string()), "{rendered:?}");
    assert!(rendered.contains(&"floor:3".to_string()), "{rendered:?}");
    // Both referenced tuples are marked seen.
    assert_eq!(tt.visited.len(), 2);
}

/// Composite source keys produce dummy-rooted trees end to end.
#[test]
fn composite_key_relations_exchange() {
    let enrol = RelationSchema::with_any_columns("Enrol", &["student", "course", "grade"])
        .primary_key(&["student", "course"])
        .unwrap();
    let source = Schema::from_relations(vec![enrol]).unwrap();
    let mut inst = Instance::new(source);
    for i in 0..10 {
        inst.insert(
            "Enrol",
            Tuple::of([format!("s{}", i % 3), format!("c{i}"), format!("g{i}")]),
            ConflictPolicy::Reject,
        )
        .unwrap();
    }
    let tgt = RelationSchema::with_any_columns("TEnrol", &["st", "co", "gr"]);
    let target = Schema::from_relations(vec![tgt]).unwrap();
    let sigma =
        Correspondences::from_name_pairs([("student", "st"), ("course", "co"), ("grade", "gr")]);
    let (out, report) = SedexEngine::new().exchange(&inst, &target, &sigma).unwrap();
    assert_eq!(out.relation("TEnrol").unwrap().len(), 10);
    assert_eq!(report.stats.nulls, 0);
}

/// A four-level FK chain flows intact through one entity's script.
#[test]
fn deep_reference_chain() {
    let d = RelationSchema::with_any_columns("D", &["dk", "dv"])
        .primary_key(&["dk"])
        .unwrap();
    let c = RelationSchema::with_any_columns("C", &["ck", "cv", "dref"])
        .primary_key(&["ck"])
        .unwrap()
        .foreign_key(&["dref"], "D")
        .unwrap();
    let b = RelationSchema::with_any_columns("B", &["bk", "bv", "cref"])
        .primary_key(&["bk"])
        .unwrap()
        .foreign_key(&["cref"], "C")
        .unwrap();
    let a = RelationSchema::with_any_columns("A", &["ak", "av", "bref"])
        .primary_key(&["ak"])
        .unwrap()
        .foreign_key(&["bref"], "B")
        .unwrap();
    let source = Schema::from_relations(vec![a, b, c, d]).unwrap();
    let mut inst = Instance::new(source);
    inst.insert("D", tuple!["d1", "dv1"], ConflictPolicy::Reject)
        .unwrap();
    inst.insert("C", tuple!["c1", "cv1", "d1"], ConflictPolicy::Reject)
        .unwrap();
    inst.insert("B", tuple!["b1", "bv1", "c1"], ConflictPolicy::Reject)
        .unwrap();
    inst.insert("A", tuple!["a1", "av1", "b1"], ConflictPolicy::Reject)
        .unwrap();

    // Flat target covering the whole chain.
    let flat = RelationSchema::with_any_columns("Flat", &["fk", "fav", "fbv", "fcv", "fdv"])
        .primary_key(&["fk"])
        .unwrap();
    let target = Schema::from_relations(vec![flat]).unwrap();
    let sigma = Correspondences::from_name_pairs([
        ("ak", "fk"),
        ("av", "fav"),
        ("bv", "fbv"),
        ("cv", "fcv"),
        ("dv", "fdv"),
    ]);
    let (out, report) = SedexEngine::new().exchange(&inst, &target, &sigma).unwrap();
    assert_eq!(
        out.relation("Flat").unwrap().row(0).unwrap(),
        &tuple!["a1", "av1", "bv1", "cv1", "dv1"]
    );
    // B, C, D were all reached through A and skipped.
    assert_eq!(report.tuples_skipped_seen, 3);
}

/// Alternative pq-gram parameters must still find the right hosts on the
/// running example (parameters change distances, not the argmin here).
#[test]
fn alternative_pq_parameters_agree() {
    use sedex::scenarios::university;
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let (base, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    for (p, q) in [(2usize, 2usize), (3, 1), (3, 2)] {
        let engine = SedexEngine::with_config(SedexConfig {
            p,
            q,
            ..SedexConfig::default()
        });
        let (out, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_eq!(out.stats(), base.stats(), "p={p} q={q}");
    }
}

/// The windowed-matcher configuration produces the same instance as the
/// default on the running example (q=1 equivalence) and works at q=2.
#[test]
fn windowed_engine_configuration() {
    use sedex::scenarios::university;
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let (base, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    for (q, w) in [(1usize, 2usize), (2, 3)] {
        let engine = SedexEngine::with_config(SedexConfig {
            q,
            window: Some(w),
            ..SedexConfig::default()
        });
        let (out, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_eq!(out.stats(), base.stats(), "q={q} w={w}");
    }
}

/// Differential: SEDEX and EDEX agree on every STBenchmark basic scenario.
#[test]
fn sedex_edex_differential_across_scenarios() {
    use sedex::scenarios::stbench::{basic, BasicKind};
    for kind in BasicKind::all() {
        let s = basic(kind);
        let inst = s.populate(40, 77).unwrap();
        let (a, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let (b, _) = EdexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        assert_eq!(a.stats(), b.stats(), "{}", kind.name());
    }
}

/// Unique constraints (beyond the PK) are enforced by script runs.
#[test]
fn unique_constraint_merges_in_target() {
    let r = RelationSchema::with_any_columns("R", &["k", "email", "name"])
        .primary_key(&["k"])
        .unwrap();
    let source = Schema::from_relations(vec![r]).unwrap();
    let mut inst = Instance::new(source);
    // Two source rows with different keys but the same email.
    inst.insert("R", tuple!["k1", "a@x", "Ann"], ConflictPolicy::Reject)
        .unwrap();
    inst.insert("R", tuple!["k2", "a@x", "Ann"], ConflictPolicy::Reject)
        .unwrap();
    let t = RelationSchema::with_any_columns("T", &["tk", "temail", "tname"])
        .primary_key(&["tk"])
        .unwrap()
        .unique_on(&["temail"])
        .unwrap();
    let target = Schema::from_relations(vec![t]).unwrap();
    let sigma =
        Correspondences::from_name_pairs([("k", "tk"), ("email", "temail"), ("name", "tname")]);
    let (out, report) = SedexEngine::new().exchange(&inst, &target, &sigma).unwrap();
    // The unique(email) egd merges the two rows... but their keys conflict
    // as constants → one violation, one surviving row.
    assert_eq!(out.relation("T").unwrap().len(), 1, "{out}");
    assert_eq!(report.violations, 1);
}

/// Typed columns survive the exchange: integers stay integers, and type
/// checking rejects a malformed target write at the storage layer.
#[test]
fn typed_columns_flow_through() {
    use sedex::storage::{Column, DataType};
    let r = RelationSchema::new(
        "Orders",
        vec![
            Column::new("oid", DataType::Text).not_null(),
            Column::new("amount", DataType::Int),
            Column::new("weight", DataType::Real),
        ],
    )
    .primary_key(&["oid"])
    .unwrap();
    let source = Schema::from_relations(vec![r]).unwrap();
    let mut inst = Instance::new(source);
    inst.insert("Orders", tuple!["o1", 42i64, 2.5], ConflictPolicy::Reject)
        .unwrap();
    let t = RelationSchema::new(
        "Fact",
        vec![
            Column::new("fid", DataType::Text).not_null(),
            Column::new("famount", DataType::Int),
            Column::new("fweight", DataType::Real),
        ],
    )
    .primary_key(&["fid"])
    .unwrap();
    let target = Schema::from_relations(vec![t]).unwrap();
    let sigma = Correspondences::from_name_pairs([
        ("oid", "fid"),
        ("amount", "famount"),
        ("weight", "fweight"),
    ]);
    let (out, _) = SedexEngine::new().exchange(&inst, &target, &sigma).unwrap();
    let row = out.relation("Fact").unwrap().row(0).unwrap();
    assert_eq!(row.values()[1], Value::Int(42));
    assert_eq!(row.values()[2], Value::real(2.5));
}

/// Engine rejects nothing but reports unmatched tuples when Σ is empty.
#[test]
fn empty_sigma_exchanges_nothing() {
    use sedex::scenarios::university;
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let (out, report) = SedexEngine::new()
        .exchange(&inst, &s.target, &Correspondences::new())
        .unwrap();
    assert_eq!(out.total_tuples(), 0);
    assert!(report.tuples_unmatched > 0);
}
