//! Cross-crate integration tests on the paper's running example
//! (Figs. 2–8): trees, matching, translation, scripts and the full engine
//! working together.

use sedex::core::{Matcher, SedexEngine};
use sedex::prelude::*;
use sedex::scenarios::university;
use sedex::treerep::{
    post_order_key, reduce_to_relation_tree, tuple_tree, SchemaForest, TreeConfig,
};

#[test]
fn processing_order_matches_section_41() {
    let s = university::scenario();
    let forest = SchemaForest::new(&s.source, &TreeConfig::default()).unwrap();
    assert_eq!(
        forest.processing_order(),
        vec!["Registration", "Student", "Prof", "Dep"]
    );
}

#[test]
fn paper_distances_reproduce() {
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let forest = SchemaForest::new(&s.target, &TreeConfig::default()).unwrap();
    let matcher = Matcher::new(&forest, 2, 1);
    let tt = tuple_tree(&inst, "Registration", 0, &TreeConfig::default()).unwrap();
    let m = matcher.best_match(&tt, &s.sigma).unwrap();
    let d: std::collections::HashMap<_, _> = m.ranking.iter().cloned().collect();
    assert!((d["Reg"] - 10.0 / 14.0).abs() < 1e-9);
    assert!((d["Stu"] - 10.0 / 13.0).abs() < 1e-9);
    assert!((d["Course"] - 1.0).abs() < 1e-9);
    assert_eq!(m.relation, "Reg");
}

#[test]
fn repository_key_matches_section_442() {
    let inst = university::fig3_instance().unwrap();
    let tt = tuple_tree(&inst, "Student", 0, &TreeConfig::default()).unwrap();
    assert_eq!(
        post_order_key(&reduce_to_relation_tree(&tt)),
        "program building dep degree building profdep supervisor sname"
    );
}

#[test]
fn full_exchange_preserves_every_entity_once() {
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let (out, report) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    let stu = out.relation("Stu").unwrap();
    assert_eq!(stu.len(), 2);
    // s1 carries its program/dep; supervisor has no correspondence.
    let s1 = stu.lookup_pk(&[Value::text("s1")]).unwrap();
    assert_eq!(s1.values()[1], Value::text("p1"));
    assert_eq!(s1.values()[2], Value::text("d1"));
    assert_eq!(out.relation("Reg").unwrap().len(), 2);
    assert_eq!(report.violations, 0);
    // Students flowed through Registration and were not re-processed.
    assert!(report.tuples_skipped_seen >= 2);
}

#[test]
fn exchange_is_deterministic() {
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let engine = SedexEngine::new();
    let (o1, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
    let (o2, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
    for (name, rel) in o1.relations() {
        let r2 = o2.relation(name).unwrap();
        assert_eq!(rel.rows(), r2.rows(), "relation {name}");
    }
}

#[test]
fn null_supervisor_never_reaches_target_as_value() {
    // t2's supervisor is null; the engine must not materialize a Prof-like
    // entity for it anywhere.
    let s = university::scenario();
    let inst = university::fig3_instance().unwrap();
    let (out, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    let stu = out.relation("Stu").unwrap();
    let s2 = stu.lookup_pk(&[Value::text("s2")]).unwrap();
    // supervisor column: no correspondence → null in target.
    assert!(s2.values()[3].is_null());
}
