//! Engine-level integration: quality orderings and ablations that DESIGN.md
//! promises, verified across crates.

use sedex::core::SedexConfig;
use sedex::mapping::{ClioEngine, SpicyEngine};
use sedex::prelude::*;
use sedex::scenarios::ibench::{add_vp, ScenarioBuilder};
use sedex::scenarios::stbench::{basic, BasicKind};

/// On a VP workload with egds, quality ordering is
/// Clio (most atoms) ≥ ++Spicy ≥ SEDEX.
#[test]
fn quality_ordering_clio_spicy_sedex() {
    let mut b = ScenarioBuilder::default();
    add_vp(&mut b, "vp0", 6, true);
    let s = b.build("vp");
    let inst = s.populate(60, 31).unwrap();

    let clio = ClioEngine::new(&s.source, &s.target, &s.sigma);
    let (c_out, _) = clio.run(&inst, &s.target).unwrap();
    let spicy = SpicyEngine::new(&s.source, &s.target, &s.sigma);
    let (p_out, _) = spicy.run(&inst, &s.target).unwrap();
    let (x_out, _) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();

    let (c, p, x) = (c_out.stats(), p_out.stats(), x_out.stats());
    assert!(c.atoms() >= p.atoms(), "clio {c:?} vs spicy {p:?}");
    assert!(p.atoms() >= x.atoms(), "spicy {p:?} vs sedex {x:?}");
    assert!(c.nulls >= p.nulls);
}

#[test]
fn reuse_ablation_identical_output_more_work() {
    let s = basic(BasicKind::De);
    let inst = s.populate(150, 32).unwrap();
    let baseline = SedexEngine::new();
    let ablated = SedexEngine::with_config(SedexConfig {
        reuse_scripts: false,
        ..SedexConfig::default()
    });
    let (o1, r1) = baseline.exchange(&inst, &s.target, &s.sigma).unwrap();
    let (o2, r2) = ablated.exchange(&inst, &s.target, &s.sigma).unwrap();
    assert_eq!(o1.stats(), o2.stats());
    assert!(r1.scripts_generated * 10 < r2.scripts_generated);
}

#[test]
fn order_ablation_fragments_entities() {
    // Section 4.1's claim, demonstrated: processing referenced relations
    // BEFORE their referencing relations materializes the referenced
    // entities twice (once standalone with a surrogate, once through the
    // reference) — entity fragmentation. Height ordering prevents it.
    let s = basic(BasicKind::De);
    let inst = s.populate(50, 33).unwrap();
    let ordered = SedexEngine::new();
    let unordered = SedexEngine::with_config(SedexConfig {
        order_by_height: false,
        ..SedexConfig::default()
    });
    let (o1, r1) = ordered.exchange(&inst, &s.target, &s.sigma).unwrap();
    let (o2, r2) = unordered.exchange(&inst, &s.target, &s.sigma).unwrap();
    assert!(
        o2.stats().atoms() > o1.stats().atoms(),
        "unordered {:?} vs ordered {:?}",
        o2.stats(),
        o1.stats()
    );
    assert!(o2.stats().tuples > o1.stats().tuples);
    // The ordered run skips the parents it already visited; the unordered
    // one processed them standalone first.
    assert!(r1.tuples_skipped_seen > r2.tuples_skipped_seen);
}

#[test]
fn edex_slower_metrics_than_sedex() {
    let s = basic(BasicKind::Cp);
    let inst = s.populate(400, 34).unwrap();
    let (_, sedex_rep) = SedexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    let (_, edex_rep) = EdexEngine::new()
        .exchange(&inst, &s.target, &s.sigma)
        .unwrap();
    // EDEX generates one script per tuple; SEDEX a handful.
    assert!(sedex_rep.scripts_generated < 10);
    assert_eq!(edex_rep.scripts_generated, 400);
}

#[test]
fn hit_events_reconstruct_fig14_pattern() {
    let s = basic(BasicKind::Cp);
    let inst = s.populate(300, 35).unwrap();
    let engine = SedexEngine::with_config(SedexConfig {
        record_hit_events: true,
        ..SedexConfig::default()
    });
    let (_, rep) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
    assert_eq!(rep.hit_events.len(), 300);
    let curve = rep.hit_ratio_curve(10);
    assert_eq!(curve.len(), 10);
    // "The hit ratio at the beginning is very low … sharply increases."
    assert!(curve.last().unwrap().1 > 0.95);
}

#[test]
fn violations_counted_not_fatal() {
    // Two source rows map to the same target key with conflicting
    // constants: SEDEX records a violation and keeps the first tuple.
    let r = RelationSchema::with_any_columns("R", &["k", "v"]);
    let src_schema = Schema::from_relations(vec![r]).unwrap();
    let mut inst = Instance::new(src_schema);
    inst.insert("R", tuple!["k1", "a"], ConflictPolicy::Allow)
        .unwrap();
    inst.insert("R", tuple!["k1", "b"], ConflictPolicy::Allow)
        .unwrap();
    let t = RelationSchema::with_any_columns("T", &["k2", "v2"])
        .primary_key(&["k2"])
        .unwrap();
    let tgt = Schema::from_relations(vec![t]).unwrap();
    let sigma = Correspondences::from_name_pairs([("k", "k2"), ("v", "v2")]);
    let (out, rep) = SedexEngine::new().exchange(&inst, &tgt, &sigma).unwrap();
    assert_eq!(rep.violations, 1);
    assert_eq!(out.relation("T").unwrap().len(), 1);
}

#[test]
fn cfd_round_trip_through_engine() {
    use sedex::core::{Cfd, CfdInterpreter};
    let r = RelationSchema::with_any_columns("Treat", &["pid", "treatment", "disease"])
        .primary_key(&["pid"])
        .unwrap();
    let src_schema = Schema::from_relations(vec![r]).unwrap();
    let mut inst = Instance::new(src_schema);
    inst.insert(
        "Treat",
        tuple!["p1", "dialysis", Value::Null],
        ConflictPolicy::Reject,
    )
    .unwrap();
    let t = RelationSchema::with_any_columns("T", &["id", "illness"])
        .primary_key(&["id"])
        .unwrap();
    let tgt = Schema::from_relations(vec![t]).unwrap();
    let sigma = Correspondences::from_name_pairs([("pid", "id"), ("disease", "illness")]);
    let cfds = CfdInterpreter::load([Cfd::Intra {
        relation: "Treat".into(),
        cond_col: "treatment".into(),
        cond_val: Value::text("dialysis"),
        det_col: "disease".into(),
        det_val: Value::text("kidney disease"),
    }]);
    let engine = SedexEngine::new().with_cfds(cfds);
    let (out, _) = engine.exchange(&inst, &tgt, &sigma).unwrap();
    assert_eq!(
        out.relation("T").unwrap().row(0).unwrap(),
        &tuple!["p1", "kidney disease"]
    );
}
