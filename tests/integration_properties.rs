//! Property-based integration tests (proptest) over the core invariants
//! DESIGN.md promises.

use proptest::prelude::*;
use sedex::core::{SedexConfig, SedexEngine};
use sedex::mapping::egd::apply_egds;
use sedex::mapping::{ClioEngine, Egd};
use sedex::pqgram::{normalized_distance, PqGramProfile, Tree};
use sedex::prelude::*;
use sedex::scenarios::ibench::{add_cp, add_su, add_vp, ScenarioBuilder};

// --- random labeled trees -------------------------------------------------

fn arb_tree() -> impl Strategy<Value = Tree<String>> {
    // A tree as a parent vector: node i>0 attaches under parent[i] % i.
    (1usize..24, proptest::collection::vec(0usize..100, 0..24)).prop_map(|(extra, parents)| {
        let labels = ["a", "b", "c", "d", "e"];
        let mut t = Tree::new(labels[extra % labels.len()].to_string());
        let mut ids = vec![t.root()];
        for (i, p) in parents.iter().enumerate() {
            let parent = ids[p % ids.len()];
            let id = t.add_child(parent, labels[(i + extra) % labels.len()].to_string());
            ids.push(id);
        }
        t
    })
}

proptest! {
    #[test]
    fn pqgram_distance_identity(t in arb_tree(), p in 1usize..4, q in 1usize..3) {
        let prof = PqGramProfile::new(&t, p, q);
        prop_assert_eq!(normalized_distance(&prof, &prof), 0.0);
    }

    #[test]
    fn pqgram_distance_symmetric(t1 in arb_tree(), t2 in arb_tree()) {
        let p1 = PqGramProfile::new(&t1, 2, 1);
        let p2 = PqGramProfile::new(&t2, 2, 1);
        let d12 = normalized_distance(&p1, &p2);
        let d21 = normalized_distance(&p2, &p1);
        prop_assert_eq!(d12, d21);
        prop_assert!(d12 <= 1.0);
    }

    #[test]
    fn pqgram_profile_size_linear(t in arb_tree()) {
        // With q = 1 every non-dummy node contributes one gram per child
        // (or one dummy window): |profile| = nodes + leaves - ... bounded by
        // 2 × nodes. Linear time/size is the property the paper relies on.
        let prof = PqGramProfile::new(&t, 2, 1);
        prop_assert!(prof.len() >= t.len());
        prop_assert!(prof.len() <= 2 * t.len());
    }

    #[test]
    fn sibling_order_never_matters(t in arb_tree()) {
        // Reverse every sibling list: profiles must be identical (sorting
        // step).
        let mut rev = t.clone();
        // Rebuild with reversed children by mapping through preorder.
        let mut t2 = Tree::new(rev.label(rev.root()).clone());
        fn copy_rev(src: &Tree<String>, s: usize, dst: &mut Tree<String>, d: usize) {
            for &c in src.children(s).iter().rev() {
                let nd = dst.add_child(d, src.label(c).clone());
                copy_rev(src, c, dst, nd);
            }
        }
        let t2_root = t2.root();
        copy_rev(&rev, rev.root(), &mut t2, t2_root);
        let p1 = PqGramProfile::new(&t, 2, 1);
        let p2 = PqGramProfile::new(&t2, 2, 1);
        prop_assert_eq!(normalized_distance(&p1, &p2), 0.0);
        rev.sort_siblings();
    }
}

// --- storage / egd properties ----------------------------------------------

proptest! {
    #[test]
    fn egd_application_is_idempotent(
        rows in proptest::collection::vec((0u8..5, 0u8..8, 0u8..8), 1..40)
    ) {
        let r = RelationSchema::with_any_columns("T", &["k", "a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for (k, a, b) in rows {
            // Mix constants and labeled nulls.
            let av = if a < 4 { Value::Labeled(a as u64) } else { Value::int(a as i64) };
            let bv = if b < 4 { Value::Labeled(b as u64 + 10) } else { Value::int(b as i64) };
            inst.insert("T", Tuple::new(vec![Value::int(k as i64), av, bv]), ConflictPolicy::Allow).unwrap();
        }
        let egds = vec![Egd { relation: "T".into(), key: vec![0] }];
        apply_egds(&mut inst, &egds);
        let after_first = inst.stats();
        let out2 = apply_egds(&mut inst, &egds);
        prop_assert_eq!(after_first, inst.stats());
        prop_assert_eq!(out2.merged, 0);
    }

    #[test]
    fn instance_stats_conserved_by_dedup(
        vals in proptest::collection::vec(0u8..4, 1..30)
    ) {
        let r = RelationSchema::with_any_columns("R", &["v"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        let mut distinct = std::collections::HashSet::new();
        for v in vals {
            inst.insert("R", tuple![v as i64], ConflictPolicy::Allow).unwrap();
            distinct.insert(v);
        }
        prop_assert_eq!(inst.total_tuples(), distinct.len());
    }
}

// --- end-to-end soundness and reuse-invariance -----------------------------

/// A small random scenario: a few CP/VP/SU primitives.
fn arb_scenario() -> impl Strategy<Value = Scenario> {
    proptest::collection::vec(0u8..3, 1..4).prop_map(|kinds| {
        let mut b = ScenarioBuilder::default();
        for (i, k) in kinds.iter().enumerate() {
            match k {
                0 => add_cp(&mut b, &format!("cp{i}"), 3 + i % 3, true),
                1 => add_vp(&mut b, &format!("vp{i}"), 4 + i % 2, true),
                _ => add_su(&mut b, &format!("su{i}"), 3, true),
            }
        }
        b.build("prop")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sedex_output_is_sound(s in arb_scenario(), n in 1usize..30, seed in 0u64..1000) {
        // Every constant in the target traces back to a source constant.
        let inst = s.populate(n, seed).unwrap();
        let mut source_constants = std::collections::HashSet::new();
        for (_, rel) in inst.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        source_constants.insert(v.clone());
                    }
                }
            }
        }
        let (out, _) = SedexEngine::new().exchange(&inst, &s.target, &s.sigma).unwrap();
        for (name, rel) in out.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        prop_assert!(
                            source_constants.contains(v),
                            "unsound constant {v} in {name}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn script_reuse_never_changes_output(s in arb_scenario(), n in 1usize..25, seed in 0u64..1000) {
        let inst = s.populate(n, seed).unwrap();
        let with = SedexEngine::new();
        let without = SedexEngine::with_config(SedexConfig {
            reuse_scripts: false,
            ..SedexConfig::default()
        });
        let (o1, _) = with.exchange(&inst, &s.target, &s.sigma).unwrap();
        let (o2, _) = without.exchange(&inst, &s.target, &s.sigma).unwrap();
        prop_assert_eq!(o1.stats().constants, o2.stats().constants);
        prop_assert_eq!(o1.stats().tuples, o2.stats().tuples);
    }

    #[test]
    fn clio_universal_solution_covers_sedex_constants(
        s in arb_scenario(), n in 1usize..20, seed in 0u64..1000
    ) {
        // The universal solution reflects all source data; SEDEX's constants
        // are a subset of Clio's (SEDEX adds nothing Clio would not).
        let inst = s.populate(n, seed).unwrap();
        let clio = ClioEngine::new(&s.source, &s.target, &s.sigma);
        let (c_out, _) = clio.run(&inst, &s.target).unwrap();
        let (x_out, _) = SedexEngine::new().exchange(&inst, &s.target, &s.sigma).unwrap();
        let mut clio_consts = std::collections::HashSet::new();
        for (_, rel) in c_out.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        clio_consts.insert(v.clone());
                    }
                }
            }
        }
        for (_, rel) in x_out.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        prop_assert!(clio_consts.contains(v));
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_equals_serial(s in arb_scenario(), n in 1usize..40, seed in 0u64..100) {
        let inst = s.populate(n, seed).unwrap();
        let (o1, _) = SedexEngine::new().exchange(&inst, &s.target, &s.sigma).unwrap();
        let engine = SedexEngine::with_config(SedexConfig {
            threads: 3,
            batch_size: 16,
            ..SedexConfig::default()
        });
        let (o2, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        prop_assert_eq!(o1.stats(), o2.stats());
    }
}
