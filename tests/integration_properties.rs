//! Property-style integration tests over the core invariants DESIGN.md
//! promises.
//!
//! Deterministic: cases are generated from seeded SplitMix64 streams, so
//! every run exercises the same (broad) input set with no external
//! property-testing dependency.

use sedex::core::{SedexConfig, SedexEngine};
use sedex::mapping::egd::apply_egds;
use sedex::mapping::{ClioEngine, Egd};
use sedex::pqgram::{normalized_distance, PqGramProfile, Tree};
use sedex::prelude::*;
use sedex::scenarios::ibench::{add_cp, add_su, add_vp, ScenarioBuilder};

/// SplitMix64 — tiny, seedable, good enough to diversify test inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

// --- random labeled trees -------------------------------------------------

/// A tree as a parent vector: node i>0 attaches under a random earlier
/// node — the same distribution the original proptest strategy produced.
fn gen_tree(seed: u64) -> Tree<String> {
    let mut rng = Rng(seed);
    let labels = ["a", "b", "c", "d", "e"];
    let extra = 1 + rng.below(23);
    let mut t = Tree::new(labels[extra % labels.len()].to_string());
    let mut ids = vec![t.root()];
    let n = rng.below(24);
    for i in 0..n {
        let parent = ids[rng.below(ids.len())];
        let id = t.add_child(parent, labels[(i + extra) % labels.len()].to_string());
        ids.push(id);
    }
    t
}

#[test]
fn pqgram_distance_identity() {
    for seed in 0..20u64 {
        let t = gen_tree(seed);
        for p in 1usize..4 {
            for q in 1usize..3 {
                let prof = PqGramProfile::new(&t, p, q);
                assert_eq!(
                    normalized_distance(&prof, &prof),
                    0.0,
                    "seed {seed} p{p} q{q}"
                );
            }
        }
    }
}

#[test]
fn pqgram_distance_symmetric() {
    for seed in 0..20u64 {
        let t1 = gen_tree(seed);
        let t2 = gen_tree(seed + 500);
        let p1 = PqGramProfile::new(&t1, 2, 1);
        let p2 = PqGramProfile::new(&t2, 2, 1);
        let d12 = normalized_distance(&p1, &p2);
        let d21 = normalized_distance(&p2, &p1);
        assert_eq!(d12, d21, "seed {seed}");
        assert!(d12 <= 1.0, "seed {seed}");
    }
}

#[test]
fn pqgram_profile_size_linear() {
    // With q = 1 every non-dummy node contributes one gram per child (or
    // one dummy window): |profile| bounded by 2 × nodes. Linear time/size
    // is the property the paper relies on.
    for seed in 0..20u64 {
        let t = gen_tree(seed ^ 0x77);
        let prof = PqGramProfile::new(&t, 2, 1);
        assert!(prof.len() >= t.len(), "seed {seed}");
        assert!(prof.len() <= 2 * t.len(), "seed {seed}");
    }
}

#[test]
fn sibling_order_never_matters() {
    // Reverse every sibling list: profiles must be identical (sorting
    // step).
    fn copy_rev(src: &Tree<String>, s: usize, dst: &mut Tree<String>, d: usize) {
        for &c in src.children(s).iter().rev() {
            let nd = dst.add_child(d, src.label(c).clone());
            copy_rev(src, c, dst, nd);
        }
    }
    for seed in 0..20u64 {
        let t = gen_tree(seed ^ 0x99);
        let mut t2 = Tree::new(t.label(t.root()).clone());
        let t2_root = t2.root();
        copy_rev(&t, t.root(), &mut t2, t2_root);
        let p1 = PqGramProfile::new(&t, 2, 1);
        let p2 = PqGramProfile::new(&t2, 2, 1);
        assert_eq!(normalized_distance(&p1, &p2), 0.0, "seed {seed}");
    }
}

// --- storage / egd properties ----------------------------------------------

#[test]
fn egd_application_is_idempotent() {
    for seed in 0..24u64 {
        let mut rng = Rng(seed ^ 0x1234);
        let n = 1 + rng.below(39);
        let r = RelationSchema::with_any_columns("T", &["k", "a", "b"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        for _ in 0..n {
            let (k, a, b) = (rng.below(5), rng.below(8), rng.below(8));
            // Mix constants and labeled nulls.
            let av = if a < 4 {
                Value::Labeled(a as u64)
            } else {
                Value::int(a as i64)
            };
            let bv = if b < 4 {
                Value::Labeled(b as u64 + 10)
            } else {
                Value::int(b as i64)
            };
            inst.insert(
                "T",
                Tuple::new(vec![Value::int(k as i64), av, bv]),
                ConflictPolicy::Allow,
            )
            .unwrap();
        }
        let egds = vec![Egd {
            relation: "T".into(),
            key: vec![0],
        }];
        apply_egds(&mut inst, &egds);
        let after_first = inst.stats();
        let out2 = apply_egds(&mut inst, &egds);
        assert_eq!(after_first, inst.stats(), "seed {seed}");
        assert_eq!(out2.merged, 0, "seed {seed}");
    }
}

#[test]
fn instance_stats_conserved_by_dedup() {
    for seed in 0..24u64 {
        let mut rng = Rng(seed ^ 0x4321);
        let n = 1 + rng.below(29);
        let r = RelationSchema::with_any_columns("R", &["v"]);
        let schema = Schema::from_relations(vec![r]).unwrap();
        let mut inst = Instance::new(schema);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..n {
            let v = rng.below(4) as u8;
            inst.insert("R", tuple![v as i64], ConflictPolicy::Allow)
                .unwrap();
            distinct.insert(v);
        }
        assert_eq!(inst.total_tuples(), distinct.len(), "seed {seed}");
    }
}

// --- end-to-end soundness and reuse-invariance -----------------------------

/// A small random scenario: a few CP/VP/SU primitives.
fn gen_scenario(seed: u64) -> Scenario {
    let mut rng = Rng(seed);
    let n = 1 + rng.below(3);
    let mut b = ScenarioBuilder::default();
    for i in 0..n {
        match rng.below(3) {
            0 => add_cp(&mut b, &format!("cp{i}"), 3 + i % 3, true),
            1 => add_vp(&mut b, &format!("vp{i}"), 4 + i % 2, true),
            _ => add_su(&mut b, &format!("su{i}"), 3, true),
        }
    }
    b.build("prop")
}

#[test]
fn sedex_output_is_sound() {
    // Every constant in the target traces back to a source constant.
    for seed in 0..16u64 {
        let mut rng = Rng(seed ^ 0xAAAA);
        let s = gen_scenario(seed);
        let n = 1 + rng.below(29);
        let inst = s.populate(n, rng.next()).unwrap();
        let mut source_constants = std::collections::HashSet::new();
        for (_, rel) in inst.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        source_constants.insert(v.clone());
                    }
                }
            }
        }
        let (out, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        for (name, rel) in out.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        assert!(
                            source_constants.contains(v),
                            "seed {seed}: unsound constant {v} in {name}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn script_reuse_never_changes_output() {
    for seed in 0..12u64 {
        let mut rng = Rng(seed ^ 0xBBBB);
        let s = gen_scenario(seed + 100);
        let n = 1 + rng.below(24);
        let inst = s.populate(n, rng.next()).unwrap();
        let with = SedexEngine::new();
        let without = SedexEngine::with_config(SedexConfig {
            reuse_scripts: false,
            ..SedexConfig::default()
        });
        let (o1, _) = with.exchange(&inst, &s.target, &s.sigma).unwrap();
        let (o2, _) = without.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_eq!(o1.stats().constants, o2.stats().constants, "seed {seed}");
        assert_eq!(o1.stats().tuples, o2.stats().tuples, "seed {seed}");
    }
}

#[test]
fn clio_universal_solution_covers_sedex_constants() {
    // The universal solution reflects all source data; SEDEX's constants
    // are a subset of Clio's (SEDEX adds nothing Clio would not).
    for seed in 0..10u64 {
        let mut rng = Rng(seed ^ 0xCCCC);
        let s = gen_scenario(seed + 200);
        let n = 1 + rng.below(19);
        let inst = s.populate(n, rng.next()).unwrap();
        let clio = ClioEngine::new(&s.source, &s.target, &s.sigma);
        let (c_out, _) = clio.run(&inst, &s.target).unwrap();
        let (x_out, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let mut clio_consts = std::collections::HashSet::new();
        for (_, rel) in c_out.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        clio_consts.insert(v.clone());
                    }
                }
            }
        }
        for (_, rel) in x_out.relations() {
            for t in rel.iter() {
                for v in t.values() {
                    if v.is_constant() {
                        assert!(clio_consts.contains(v), "seed {seed}");
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_equals_serial() {
    for seed in 0..12u64 {
        let mut rng = Rng(seed ^ 0xDDDD);
        let s = gen_scenario(seed + 300);
        let n = 1 + rng.below(39);
        let inst = s.populate(n, rng.next()).unwrap();
        let (o1, _) = SedexEngine::new()
            .exchange(&inst, &s.target, &s.sigma)
            .unwrap();
        let engine = SedexEngine::with_config(SedexConfig {
            threads: 3,
            batch_size: 16,
            ..SedexConfig::default()
        });
        let (o2, _) = engine.exchange(&inst, &s.target, &s.sigma).unwrap();
        assert_eq!(o1.stats(), o2.stats(), "seed {seed}");
    }
}
